(* The compile service: concurrent batch compilation with a
   content-addressed pass cache. See service.mli for the contract.

   Locking design: one service mutex guards the cache table, the
   in-flight (pending) set and the LRU clock. Compilation itself runs
   outside the lock; identical in-flight requests wait on the condition
   variable instead of compiling twice, which is what makes hit/miss
   totals deterministic for a given request multiset (absent eviction).
   The metrics registry carries its own mutex and is only ever acquired
   while the service lock is either free or held (never the reverse), so
   the lock order is acyclic. *)

open Mlir

type request = {
  rq_name : string;
  rq_text : string;
}

type outcome =
  | Success of string
  | Failure of string

type response = {
  rs_name : string;
  rs_outcome : outcome;
  rs_cache_hit : bool;
  rs_remarks : Remarks.t list;
  rs_wall_us : int;
  rs_cost_units : int;
}

(* A ready cache entry. Pass failures are cached too: the pipeline is
   deterministic, so recompiling a failing module would fail identically
   — and coalesced waiters need *some* entry to wake up to. Parse
   failures are never cached (no canonical text, hence no key). *)
type cached = {
  c_outcome : outcome;
  c_remarks : Remarks.t list;
  c_cost : int;
  mutable c_last_use : int;  (** LRU clock value of the latest touch *)
}

type t = {
  pipeline : Pass.t list;
  pipeline_key : string;
  capacity : int;
  n_workers : int;
  verify_each : bool;
  reg : Sycl_obs.Metrics.registry;
  mutex : Mutex.t;
  cond : Condition.t;
  cache : (string, cached) Hashtbl.t;
  (* Keys being compiled right now. Guarded by [mutex]; removal always
     broadcasts [cond]. *)
  pending : (string, unit) Hashtbl.t;
  mutable clock : int;
}

(* Deterministic compile cost: ops in the module at every pass entry,
   summed over the pipeline. Unlike wall time it is byte-identical
   across machines and domain counts, so BENCH reports can gate its
   percentiles like simulator cycles. *)
let cost_bounds =
  [|
    100; 200; 500; 1_000; 2_000; 5_000; 10_000; 20_000; 50_000; 100_000;
    200_000; 500_000; 1_000_000;
  |]

let wall_bounds =
  [|
    50; 100; 200; 500; 1_000; 2_000; 5_000; 10_000; 20_000; 50_000;
    100_000; 200_000; 500_000; 1_000_000; 5_000_000;
  |]

let create ?(cache_capacity = 256) ?workers ?(verify_each = false) ~pipeline
    ~pipeline_key () =
  (* All dialect registration must be done by now: workers read the op
     registry concurrently, which is only safe against a frozen table. *)
  Op_registry.freeze ();
  let n_workers =
    match workers with
    | Some w -> max 1 w
    | None -> Domain.recommended_domain_count ()
  in
  {
    pipeline;
    pipeline_key;
    capacity = max 1 cache_capacity;
    n_workers;
    verify_each;
    reg = Sycl_obs.Metrics.create ();
    mutex = Mutex.create ();
    cond = Condition.create ();
    cache = Hashtbl.create 64;
    pending = Hashtbl.create 8;
    clock = 0;
  }

let workers t = t.n_workers
let cache_capacity t = t.capacity
let metrics t = t.reg
let cache_length t = Mutex.protect t.mutex (fun () -> Hashtbl.length t.cache)

let pipeline_key_of_passes passes =
  "passes=" ^ String.concat "," (List.map (fun p -> p.Pass.pass_name) passes)

let cache_key ~pipeline_key ~canonical_text =
  Digest.to_hex (Digest.string (canonical_text ^ "\x00" ^ pipeline_key))

let canonical_text (m : Core.op) = Printer.to_string m

(* ------------------------------------------------------------------ *)
(* Cache protocol                                                      *)
(* ------------------------------------------------------------------ *)

let touch t entry =
  t.clock <- t.clock + 1;
  entry.c_last_use <- t.clock

(* Under [t.mutex]: claim [key] for compilation, or wait for / return
   the ready result. [waited] reports whether we slept behind an
   in-flight compile of the same key (a coalesced hit). *)
let acquire t key : [ `Hit of cached * bool ] option =
  Mutex.protect t.mutex (fun () ->
      let waited = ref false in
      let rec go () =
        match Hashtbl.find_opt t.cache key with
        | Some entry ->
          touch t entry;
          Some (`Hit (entry, !waited))
        | None ->
          if Hashtbl.mem t.pending key then begin
            waited := true;
            Condition.wait t.cond t.mutex;
            go ()
          end
          else begin
            Hashtbl.replace t.pending key ();
            None
          end
      in
      go ())

(* Under [t.mutex]: publish [entry] under [key], evicting LRU entries
   beyond capacity, release the pending claim and wake waiters. Returns
   the number of evictions. *)
let release t key entry =
  Mutex.protect t.mutex (fun () ->
      touch t entry;
      Hashtbl.replace t.cache key entry;
      let evicted = ref 0 in
      while Hashtbl.length t.cache > t.capacity do
        let victim =
          Hashtbl.fold
            (fun k e acc ->
              match acc with
              | Some (_, best) when best.c_last_use <= e.c_last_use -> acc
              | _ -> Some (k, e))
            t.cache None
        in
        match victim with
        | Some (k, _) ->
          Hashtbl.remove t.cache k;
          incr evicted
        | None -> ()
      done;
      Hashtbl.remove t.pending key;
      Condition.broadcast t.cond;
      !evicted)

(* Release a claim without publishing (parse errors never reach here,
   but a truly unexpected exception must not strand coalesced waiters:
   they wake, find neither entry nor claim, and compile themselves). *)
let abandon t key =
  Mutex.protect t.mutex (fun () ->
      Hashtbl.remove t.pending key;
      Condition.broadcast t.cond)

(* ------------------------------------------------------------------ *)
(* Request processing                                                  *)
(* ------------------------------------------------------------------ *)

let count_ops (m : Core.op) =
  let n = ref 0 in
  Core.walk m ~f:(fun _ -> incr n);
  !n

(* Process one request on the current domain. Does NOT broadcast
   remarks — the caller replays them on its own domain in canonical
   request order. *)
let process t (rq : request) : response =
  let module Metrics = Sycl_obs.Metrics in
  let t0 = Unix.gettimeofday () in
  let finish ~outcome ~hit ~remarks ~cost =
    let wall_us =
      max 1 (int_of_float (Float.round ((Unix.gettimeofday () -. t0) *. 1e6)))
    in
    Metrics.incr t.reg "service.requests";
    Metrics.observe t.reg ~bounds:wall_bounds "service.request_wall_us" wall_us;
    {
      rs_name = rq.rq_name;
      rs_outcome = outcome;
      rs_cache_hit = hit;
      rs_remarks = remarks;
      rs_wall_us = wall_us;
      rs_cost_units = cost;
    }
  in
  match Parser.parse_module ~file:rq.rq_name rq.rq_text with
  | exception Parser.Parse_error msg ->
    Metrics.incr t.reg "service.errors";
    finish
      ~outcome:(Failure (Printf.sprintf "parse error: %s" msg))
      ~hit:false ~remarks:[] ~cost:0
  | m -> (
    let key =
      cache_key ~pipeline_key:t.pipeline_key ~canonical_text:(canonical_text m)
    in
    match acquire t key with
    | Some (`Hit (entry, waited)) ->
      Metrics.incr t.reg "service.cache_hits";
      if waited then Metrics.incr t.reg "service.coalesced_waits";
      finish ~outcome:entry.c_outcome ~hit:true ~remarks:entry.c_remarks
        ~cost:0
    | None ->
      (* Miss: we hold the pending claim for [key]. *)
      let cost = ref 0 in
      let cost_instr =
        Instrument.make
          ~before_pass:(fun ~pass_name:_ mo -> cost := !cost + count_ops mo)
          "service-cost"
      in
      let collected = ref [] in
      let outcome =
        match
          Remarks.isolated
            (fun r -> collected := r :: !collected)
            (fun () ->
              Pass.run_pipeline ~verify_each:t.verify_each
                ~instrumentations:[ cost_instr ] t.pipeline m)
        with
        | (_ : Pass.pipeline_result) -> Success (Printer.to_string m)
        | exception Pass.Pass_failed { pass; diagnostics } ->
          Failure
            (Printf.sprintf "pass %s failed verification: %s" pass
               (String.concat "; "
                  (List.map Verifier.diag_to_string diagnostics)))
        | exception e ->
          abandon t key;
          raise e
      in
      let remarks = List.rev !collected in
      let entry =
        { c_outcome = outcome; c_remarks = remarks; c_cost = !cost;
          c_last_use = 0 }
      in
      let evicted = release t key entry in
      Metrics.incr t.reg "service.cache_misses";
      if evicted > 0 then
        Metrics.incr t.reg ~by:evicted "service.cache_evictions";
      Metrics.observe t.reg ~bounds:cost_bounds "service.compile_cost_units"
        !cost;
      finish ~outcome ~hit:false ~remarks ~cost:!cost)

let deliver_remarks (rs : response) = List.iter Remarks.broadcast rs.rs_remarks

let compile_one t rq =
  let rs = process t rq in
  deliver_remarks rs;
  rs

let run_batch t (reqs : request list) : response list =
  let module Metrics = Sycl_obs.Metrics in
  let arr = Array.of_list reqs in
  let n = Array.length arr in
  if n = 0 then []
  else begin
    let t0 = Unix.gettimeofday () in
    let results : response option array = Array.make n None in
    (* Work queue: an atomic next-index counter; workers pull until it
       runs past the end. Each slot is written by exactly one worker and
       read only after the joins, so no further synchronization is
       needed. *)
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (process t arr.(i));
          loop ()
        end
      in
      loop ()
    in
    let d = min t.n_workers n in
    if d <= 1 then worker ()
    else begin
      let spawned = Array.init (d - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      Array.iter Domain.join spawned
    end;
    let wall_us =
      max 1 (int_of_float (Float.round ((Unix.gettimeofday () -. t0) *. 1e6)))
    in
    Metrics.incr t.reg ~by:wall_us "service.batch_wall_us";
    Metrics.set_gauge t.reg "service.modules_per_sec"
      (int_of_float
         (Float.round (float_of_int n *. 1e6 /. float_of_int wall_us)));
    let responses =
      Array.to_list
        (Array.map
           (function
             | Some r -> r
             | None -> invalid_arg "Service.run_batch: missing result")
           results)
    in
    (* Canonical remark delivery: request order, emission order within a
       request — independent of worker count and interleaving. *)
    List.iter deliver_remarks responses;
    responses
  end
