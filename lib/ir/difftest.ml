(* Differential-testing harness: the three oracles that keep the textual
   round-trip and the pass pipeline honest, plus the greedy pass-bisection
   shrinker that names the first pass breaking a check.

   Oracle (a) — print → parse → print fixpoint: any module's printed form
   must re-parse, and the re-parse must print identically.
   Oracle (b) — verify-each: the verifier must accept the module after
   every pass of a pipeline; failures are attributed to the offending
   pass via an {!Instrument.verify_after} hook.
   Oracle (c) — simulator differential: optimized vs. unoptimized
   execution must agree. That oracle needs the simulator and workload
   layers, so it lives above this library (see Sycl_workloads.Differential);
   this module provides the generic machinery it shares with (a)/(b). *)

type failure = {
  f_oracle : string;  (** "roundtrip" | "verify-each" | "differential" *)
  f_detail : string;
  f_ir : string option;  (** offending module text, when available *)
}

let failure_to_string f =
  Printf.sprintf "[%s] %s" f.f_oracle f.f_detail

(** Structured form for fuzz/CI reports (shared {!Json} writer, so
    arbitrary bytes in IR text or parse errors stay valid JSON). *)
let failure_to_json (f : failure) : Json.t =
  Json.Obj
    ([
       ("oracle", Json.String f.f_oracle);
       ("detail", Json.String f.f_detail);
     ]
    @ match f.f_ir with
      | Some ir -> [ ("ir", Json.String ir) ]
      | None -> [])

(* First line number (1-based) where two texts disagree, with both lines —
   small enough to put in a report, unlike two whole modules. *)
let first_diff a b =
  let la = String.split_on_char '\n' a and lb = String.split_on_char '\n' b in
  let rec go i la lb =
    match (la, lb) with
    | [], [] -> None
    | x :: la, y :: lb when String.equal x y -> go (i + 1) la lb
    | x :: _, y :: _ -> Some (i, x, y)
    | x :: _, [] -> Some (i, x, "<missing>")
    | [], y :: _ -> Some (i, "<missing>", y)
  in
  go 1 la lb

(* ------------------------------------------------------------------ *)
(* Oracle (a): print → parse → print fixpoint                          *)
(* ------------------------------------------------------------------ *)

(** [debuginfo] additionally prints a trailing [loc(...)] on every op in
    both renderings, so the oracle covers the location syntax too. Modules
    whose locations were built with the {!Loc} smart constructors (the
    parser, the builders, {!Irgen}) are already canonical, so the fixpoint
    holds for them just as it does for the loc-less form. *)
let check_roundtrip ?(debuginfo = false) (m : Core.op) : (unit, failure) result =
  let s1 = Printer.to_string ~debuginfo m in
  match Parser.parse_string s1 with
  | exception Parser.Parse_error msg ->
    Error
      { f_oracle = "roundtrip"; f_detail = "printed module fails to re-parse: " ^ msg;
        f_ir = Some s1 }
  | m' ->
    let s2 = Printer.to_string ~debuginfo m' in
    if String.equal s1 s2 then Ok ()
    else
      let detail =
        match first_diff s1 s2 with
        | Some (i, a, b) ->
          Printf.sprintf "print/reprint fixpoint broken at line %d: %S vs %S" i a b
        | None -> "print/reprint fixpoint broken"
      in
      Error { f_oracle = "roundtrip"; f_detail = detail; f_ir = Some s1 }

(* ------------------------------------------------------------------ *)
(* Oracle (b): verifier accepts every pass's output                    *)
(* ------------------------------------------------------------------ *)

(** Run [passes] over [m] with a verifier instrument after every pass.
    Unlike [Pass.run_pipeline ~verify_each:true] this does not stop at
    the first failure: every offending pass is collected, and the error
    names the first one. *)
let check_pipeline_verified ~(passes : Pass.t list) (m : Core.op) :
    (unit, failure) result =
  let offenders = ref [] in
  let sink ~pass_name diags = offenders := (pass_name, diags) :: !offenders in
  let describe (pass_name, diags) =
    Printf.sprintf "pass '%s' broke the IR: %s" pass_name
      (String.concat "; " (List.map Verifier.diag_to_string diags))
  in
  match
    Pass.run_pipeline ~verify_each:false
      ~instrumentations:[ Instrument.verify_after ~sink () ]
      passes m
  with
  | _ -> (
    match List.rev !offenders with
    | [] -> Ok ()
    | first :: _ ->
      Error
        { f_oracle = "verify-each"; f_detail = describe first;
          f_ir = Some (Printer.to_string m) })
  | exception Pass.Pass_failed { pass; diagnostics } ->
    Error
      { f_oracle = "verify-each"; f_detail = describe (pass, diagnostics);
        f_ir = Some (Printer.to_string m) }

(* ------------------------------------------------------------------ *)
(* Oracle (d): determinism — two renderings must agree byte-for-byte   *)
(* ------------------------------------------------------------------ *)

(** Compare two textual renderings of what must be the same result —
    e.g. the sequential simulator backend vs. the parallel one after its
    canonical merge. Any byte difference is a failure; the detail names
    the first differing line. [what] says which artefact disagreed
    ("stats", "profile", "bench-json", ...). *)
let check_deterministic ~(oracle : string) ~(what : string)
    ~(reference : string) ~(subject : string) () : (unit, failure) result =
  if String.equal reference subject then Ok ()
  else
    let detail =
      match first_diff reference subject with
      | Some (i, a, b) ->
        Printf.sprintf "%s differs at line %d: %S vs %S" what i a b
      | None -> what ^ " differs"
    in
    Error { f_oracle = oracle; f_detail = detail; f_ir = None }

(* ------------------------------------------------------------------ *)
(* Greedy pass bisection                                               *)
(* ------------------------------------------------------------------ *)

(** [bisect_passes ~passes ~base ~fresh ~check] names the first pass that
    breaks [check]: it grows the pipeline prefix one pass at a time, each
    time re-running from a [fresh] module, until [check] first reports
    failure. The first [base] passes are always included (e.g. host
    raising, without which a module cannot execute) and assumed good.
    Returns [None] when every prefix — including the full pipeline —
    passes. *)
let bisect_passes ~(passes : Pass.t list) ?(base = 0) ~(fresh : unit -> Core.op)
    ~(check : Core.op -> bool) () : string option =
  let n = List.length passes in
  let prefix k = List.filteri (fun i _ -> i < k) passes in
  let ok k =
    let m = fresh () in
    (try ignore (Pass.run_pipeline ~verify_each:false (prefix k) m)
     with _ -> ());
    check m
  in
  let rec go k =
    if k > n then None
    else if ok k then go (k + 1)
    else Some (List.nth passes (k - 1)).Pass.pass_name
  in
  go (max 1 (base + 1))
