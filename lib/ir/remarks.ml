(* Optimization remarks in the style of LLVM's -Rpass / -Rpass-missed /
   -Rpass-analysis: passes emit structured records saying what they did
   (Passed), what they wanted to do but could not, and why (Missed), and
   what they learned (Analysis). Emission goes through a process-global
   sink, mirroring LLVM's remark streamer: when no sink is installed,
   [emit] is a near-no-op, so instrumented passes cost nothing in normal
   compilation. *)

type kind =
  | Passed
  | Missed
  | Analysis

let kind_to_string = function
  | Passed -> "passed"
  | Missed -> "missed"
  | Analysis -> "analysis"

let kind_of_string = function
  | "passed" -> Some Passed
  | "missed" -> Some Missed
  | "analysis" -> Some Analysis
  | _ -> None

type t = {
  r_pass : string;  (** emitting pass, e.g. ["licm"] *)
  r_name : string;  (** remark identifier, e.g. ["hoisted-mem"] *)
  r_kind : kind;
  r_func : string;  (** enclosing function / kernel ("?" when unknown) *)
  r_op : string;  (** op name the remark anchors to ("" when none) *)
  r_message : string;  (** human-readable reason *)
}

(* ------------------------------------------------------------------ *)
(* The sink                                                            *)
(* ------------------------------------------------------------------ *)

let sink : (t -> unit) option ref = ref None

let enabled () = !sink <> None

let install f = sink := Some f
let uninstall () = sink := None

let emit ~pass ~name kind ?op ?func message =
  match !sink with
  | None -> ()
  | Some s ->
    let func =
      match (func, op) with
      | Some f, _ -> f
      | None, Some o -> (
        match Core.enclosing_func o with
        | Some f -> Core.func_sym f
        | None -> "?")
      | None, None -> "?"
    in
    s
      {
        r_pass = pass;
        r_name = name;
        r_kind = kind;
        r_func = func;
        r_op = (match op with Some o -> o.Core.name | None -> "");
        r_message = message;
      }

(** Run [f] with a collecting sink installed; returns [f ()]'s result and
    the remarks emitted during it, in emission order. The previous sink
    (if any) still receives every remark, so collectors nest. *)
let collect f =
  let outer = !sink in
  let acc = ref [] in
  install (fun r ->
      acc := r :: !acc;
      match outer with Some s -> s r | None -> ());
  Fun.protect
    ~finally:(fun () -> sink := outer)
    (fun () ->
      let result = f () in
      (result, List.rev !acc))

(* ------------------------------------------------------------------ *)
(* Text output (-Rpass style)                                          *)
(* ------------------------------------------------------------------ *)

let flag_of_kind = function
  | Passed -> "-Rpass"
  | Missed -> "-Rpass-missed"
  | Analysis -> "-Rpass-analysis"

let to_string (r : t) =
  Printf.sprintf "%s: %s%s: %s [%s=%s:%s]"
    (match r.r_kind with
    | Passed -> "remark"
    | Missed -> "remark (missed)"
    | Analysis -> "remark (analysis)")
    r.r_func
    (if r.r_op = "" then "" else Printf.sprintf " (%s)" r.r_op)
    r.r_message
    (flag_of_kind r.r_kind)
    r.r_pass r.r_name

let pp fmt r = Format.pp_print_string fmt (to_string r)

(* ------------------------------------------------------------------ *)
(* JSON round-trip                                                     *)
(* ------------------------------------------------------------------ *)

let escape_json s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json (r : t) =
  Printf.sprintf
    {|{"pass": "%s", "name": "%s", "kind": "%s", "function": "%s", "op": "%s", "message": "%s"}|}
    (escape_json r.r_pass) (escape_json r.r_name)
    (kind_to_string r.r_kind)
    (escape_json r.r_func) (escape_json r.r_op) (escape_json r.r_message)

let list_to_json rs =
  "[\n  " ^ String.concat ",\n  " (List.map to_json rs) ^ "\n]\n"

exception Json_error of string

(* A minimal JSON reader covering exactly the shape [list_to_json]
   produces: an array of flat objects with string values. *)
let parse_json_remarks (s : string) : t list =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Json_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    if peek () = Some c then incr pos
    else error (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          incr pos;
          (if !pos >= n then error "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char b '"'
             | '\\' -> Buffer.add_char b '\\'
             | '/' -> Buffer.add_char b '/'
             | 'n' -> Buffer.add_char b '\n'
             | 't' -> Buffer.add_char b '\t'
             | 'r' -> Buffer.add_char b '\r'
             | 'u' ->
               if !pos + 4 >= n then error "bad \\u escape";
               let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
               (* Only the control characters we escape ourselves. *)
               Buffer.add_char b (Char.chr (code land 0xff));
               pos := !pos + 4
             | c -> error (Printf.sprintf "bad escape '\\%c'" c));
          incr pos;
          go ()
        | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_object () =
    expect '{';
    let fields = ref [] in
    skip_ws ();
    if peek () = Some '}' then incr pos
    else begin
      let rec members () =
        let key = parse_string () in
        expect ':';
        skip_ws ();
        let value = parse_string () in
        fields := (key, value) :: !fields;
        skip_ws ();
        match peek () with
        | Some ',' -> incr pos; skip_ws (); members ()
        | Some '}' -> incr pos
        | _ -> error "expected ',' or '}'"
      in
      members ()
    end;
    let field k =
      match List.assoc_opt k !fields with
      | Some v -> v
      | None -> error (Printf.sprintf "missing field %S" k)
    in
    let kind =
      match kind_of_string (field "kind") with
      | Some k -> k
      | None -> error "bad remark kind"
    in
    {
      r_pass = field "pass";
      r_name = field "name";
      r_kind = kind;
      r_func = field "function";
      r_op = field "op";
      r_message = field "message";
    }
  in
  expect '[';
  skip_ws ();
  let out = ref [] in
  if peek () = Some ']' then incr pos
  else begin
    let rec elements () =
      out := parse_object () :: !out;
      skip_ws ();
      match peek () with
      | Some ',' -> incr pos; skip_ws (); elements ()
      | Some ']' -> incr pos
      | _ -> error "expected ',' or ']'"
    in
    elements ()
  end;
  List.rev !out
