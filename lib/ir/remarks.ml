(* Optimization remarks in the style of LLVM's -Rpass / -Rpass-missed /
   -Rpass-analysis: passes emit structured records saying what they did
   (Passed), what they wanted to do but could not, and why (Missed), and
   what they learned (Analysis). Emission goes through a domain-local
   sink stack, mirroring LLVM's remark streamer: when no sink is
   installed, [emit] is a near-no-op, so instrumented passes cost
   nothing in normal compilation. *)

type kind =
  | Passed
  | Missed
  | Analysis

let kind_to_string = function
  | Passed -> "passed"
  | Missed -> "missed"
  | Analysis -> "analysis"

let kind_of_string = function
  | "passed" -> Some Passed
  | "missed" -> Some Missed
  | "analysis" -> Some Analysis
  | _ -> None

type t = {
  r_pass : string;  (** emitting pass, e.g. ["licm"] *)
  r_name : string;  (** remark identifier, e.g. ["hoisted-mem"] *)
  r_kind : kind;
  r_func : string;  (** enclosing function / kernel ("?" when unknown) *)
  r_op : string;  (** op name the remark anchors to ("" when none) *)
  r_message : string;  (** human-readable reason *)
  r_loc : Loc.t;  (** source location of the anchor op ([Unknown] when none) *)
}

(* ------------------------------------------------------------------ *)
(* The sink                                                            *)
(* ------------------------------------------------------------------ *)

(* The sink is a domain-local *stack*: [install] pushes, [uninstall]
   pops its own sink — restoring the outer one. (The previous
   implementation was a single global ref whose [uninstall] set [None]
   unconditionally, so any nested pipeline silently stole and then
   dropped the outer sink; and a ref shared across domains would let
   parallel pipelines do the same to each other.) [emit] broadcasts to
   every stacked sink, innermost first, so outer collectors keep seeing
   remarks from nested scopes. Domain.DLS keys give each worker domain
   an independent stack. *)
let sinks_key : (t -> unit) list Domain.DLS.key =
  Domain.DLS.new_key (fun () -> [])

let enabled () = Domain.DLS.get sinks_key <> []

let install f = Domain.DLS.set sinks_key (f :: Domain.DLS.get sinks_key)

let uninstall () =
  match Domain.DLS.get sinks_key with
  | [] -> ()
  | _ :: rest -> Domain.DLS.set sinks_key rest

(** Run [body] with [f] installed as the innermost sink; always pops it
    on the way out, exceptions included. *)
let with_sink f body =
  install f;
  Fun.protect ~finally:uninstall body

(** Run [body] with [f] as the {e only} sink visible in this domain,
    restoring the previous stack afterwards (exceptions included).
    Unlike {!with_sink}, outer sinks do NOT receive the remarks emitted
    inside [body] — this is how the compile service captures a request's
    remarks exactly once, then re-delivers them to the caller in
    canonical order (a request compiled on the calling domain must not
    stream into the caller's sinks twice, and one compiled on a fresh
    worker domain — whose DLS stack starts empty — must not drop them). *)
let isolated f body =
  let saved = Domain.DLS.get sinks_key in
  Domain.DLS.set sinks_key [ f ];
  Fun.protect ~finally:(fun () -> Domain.DLS.set sinks_key saved) body

(** Deliver an already-built remark record to the sinks installed in the
    current domain (innermost first). No-op when no sink is installed.
    Used to replay collected or cached remarks on the caller's domain. *)
let broadcast (r : t) = List.iter (fun s -> s r) (Domain.DLS.get sinks_key)

let emit ~pass ~name kind ?op ?func ?loc message =
  match Domain.DLS.get sinks_key with
  | [] -> ()
  | sinks ->
    let func =
      match (func, op) with
      | Some f, _ -> f
      | None, Some o -> (
        match Core.enclosing_func o with
        | Some f -> Core.func_sym f
        | None -> "?")
      | None, None -> "?"
    in
    let loc =
      match (loc, op) with
      | Some l, _ -> l
      | None, Some o -> o.Core.loc
      | None, None -> Loc.Unknown
    in
    let r =
      {
        r_pass = pass;
        r_name = name;
        r_kind = kind;
        r_func = func;
        r_op = (match op with Some o -> o.Core.name | None -> "");
        r_message = message;
        r_loc = loc;
      }
    in
    List.iter (fun s -> s r) sinks

(** Run [f] with a collecting sink installed; returns [f ()]'s result and
    the remarks emitted during it, in emission order. Outer sinks (if
    any) still receive every remark — {!emit} broadcasts down the whole
    stack — so collectors nest. *)
let collect f =
  let acc = ref [] in
  let result = with_sink (fun r -> acc := r :: !acc) f in
  (result, List.rev !acc)

(* ------------------------------------------------------------------ *)
(* Text output (-Rpass style)                                          *)
(* ------------------------------------------------------------------ *)

let flag_of_kind = function
  | Passed -> "-Rpass"
  | Missed -> "-Rpass-missed"
  | Analysis -> "-Rpass-analysis"

let to_string (r : t) =
  Printf.sprintf "%s%s: %s%s: %s [%s=%s:%s]"
    (Loc.diag_prefix r.r_loc)
    (match r.r_kind with
    | Passed -> "remark"
    | Missed -> "remark (missed)"
    | Analysis -> "remark (analysis)")
    r.r_func
    (if r.r_op = "" then "" else Printf.sprintf " (%s)" r.r_op)
    r.r_message
    (flag_of_kind r.r_kind)
    r.r_pass r.r_name

let pp fmt r = Format.pp_print_string fmt (to_string r)

(* ------------------------------------------------------------------ *)
(* JSON round-trip (via the shared Json module)                        *)
(* ------------------------------------------------------------------ *)

let to_json_value (r : t) : Json.t =
  Json.Obj
    ([
       ("pass", Json.String r.r_pass);
       ("name", Json.String r.r_name);
       ("kind", Json.String (kind_to_string r.r_kind));
       ("function", Json.String r.r_func);
       ("op", Json.String r.r_op);
       ("message", Json.String r.r_message);
       (* Textual form (round-trips via [Parser.parse_loc]) ... *)
       ("loc", Json.String (Loc.to_string r.r_loc));
     ]
    (* ... plus the resolved position, pre-digested for consumers. *)
    @
    match Loc.resolve r.r_loc with
    | Some (file, line, col) ->
      [
        ("file", Json.String file);
        ("line", Json.Int line);
        ("col", Json.Int col);
      ]
    | None -> [])

let to_json (r : t) = Json.to_string ~compact:true (to_json_value r)

let list_to_json rs =
  Json.to_string (Json.List (List.map to_json_value rs)) ^ "\n"

exception Json_error of string

let of_json_value (v : Json.t) : t =
  let field k =
    match Option.bind (Json.member k v) Json.as_string with
    | Some s -> s
    | None -> raise (Json_error (Printf.sprintf "missing field %S" k))
  in
  let kind =
    match kind_of_string (field "kind") with
    | Some k -> k
    | None -> raise (Json_error "bad remark kind")
  in
  let loc =
    (* Absent in pre-location documents; defaults to Unknown. *)
    match Option.bind (Json.member "loc" v) Json.as_string with
    | None -> Loc.Unknown
    | Some s -> (
      match Parser.parse_loc s with
      | l -> l
      | exception Parser.Parse_error msg ->
        raise (Json_error (Printf.sprintf "bad remark location %S: %s" s msg)))
  in
  {
    r_pass = field "pass";
    r_name = field "name";
    r_kind = kind;
    r_func = field "function";
    r_op = field "op";
    r_message = field "message";
    r_loc = loc;
  }

let parse_json_remarks (s : string) : t list =
  match Json.parse s with
  | exception Json.Parse_error msg -> raise (Json_error msg)
  | Json.List items -> List.map of_json_value items
  | _ -> raise (Json_error "expected a JSON array of remark objects")
