(* Textual IR output in a generic, parseable form close to MLIR's generic
   operation syntax:

     %0, %1 = dialect.op(%a, %b) ({
       ^bb0(%arg: i32):
         ...
     }) {key = value} : (i32, i32) -> (f32, f32)

   The trailing function-type section is omitted for zero-operand,
   zero-result ops; regions and attributes are omitted when empty. *)

type env = {
  buf : Buffer.t;
  names : (int, string) Hashtbl.t;
  (* Per-region block labels (^bb0, ^bb1, ...), keyed by block id. *)
  block_names : (int, string) Hashtbl.t;
  mutable counter : int;
  (* Emit trailing loc(...) attachments (--mlir-print-debuginfo). Off by
     default so golden output (and IR fingerprints) are location-free. *)
  debuginfo : bool;
}

let value_name env (v : Core.value) =
  match Hashtbl.find_opt env.names v.vid with
  | Some n -> n
  | None ->
    let n = Printf.sprintf "%%%d" env.counter in
    env.counter <- env.counter + 1;
    Hashtbl.replace env.names v.vid n;
    n

let block_name env (b : Core.block) =
  match Hashtbl.find_opt env.block_names b.Core.bid with
  | Some n -> n
  | None -> Printf.sprintf "^orphan%d" b.Core.bid

let indent env level = Buffer.add_string env.buf (String.make (2 * level) ' ')

let rec print_op env level (op : Core.op) =
  indent env level;
  (* Results *)
  if Core.num_results op > 0 then begin
    Buffer.add_string env.buf
      (String.concat ", " (List.map (value_name env) (Core.results op)));
    Buffer.add_string env.buf " = "
  end;
  Buffer.add_string env.buf op.name;
  (* Operands *)
  Buffer.add_char env.buf '(';
  Buffer.add_string env.buf
    (String.concat ", " (List.map (value_name env) (Core.operands op)));
  Buffer.add_char env.buf ')';
  (* Successors *)
  if Core.num_successors op > 0 then begin
    Buffer.add_string env.buf "[";
    Buffer.add_string env.buf
      (String.concat ", " (List.map (block_name env) (Core.successors op)));
    Buffer.add_char env.buf ']'
  end;
  (* Regions *)
  if Core.num_regions op > 0 then begin
    Buffer.add_string env.buf " (";
    Array.iteri
      (fun i r ->
        if i > 0 then Buffer.add_string env.buf ", ";
        print_region env level r)
      op.regions;
    Buffer.add_char env.buf ')'
  end;
  (* Attributes, sorted for stable output *)
  if op.attrs <> [] then begin
    let attrs = List.sort (fun (a, _) (b, _) -> compare a b) op.attrs in
    Buffer.add_string env.buf " {";
    Buffer.add_string env.buf
      (String.concat ", "
         (List.map (fun (k, v) -> k ^ " = " ^ Attr.to_string v) attrs));
    Buffer.add_char env.buf '}'
  end;
  (* Type signature *)
  if Core.num_operands op > 0 || Core.num_results op > 0 then begin
    Buffer.add_string env.buf " : (";
    Buffer.add_string env.buf
      (String.concat ", "
         (List.map (fun v -> Types.to_string v.Core.vty) (Core.operands op)));
    Buffer.add_string env.buf ") -> (";
    Buffer.add_string env.buf
      (String.concat ", "
         (List.map (fun v -> Types.to_string v.Core.vty) (Core.results op)));
    Buffer.add_char env.buf ')'
  end;
  (* Location attachment *)
  if env.debuginfo then begin
    Buffer.add_string env.buf " loc(";
    Buffer.add_string env.buf (Loc.to_string op.Core.loc);
    Buffer.add_char env.buf ')'
  end

and print_region env level (r : Core.region) =
  Buffer.add_string env.buf "{\n";
  (* Assign per-region labels up front: successor references may point
     forward to blocks whose header has not been printed yet. *)
  List.iteri
    (fun i b ->
      Hashtbl.replace env.block_names b.Core.bid (Printf.sprintf "^bb%d" i))
    r.Core.blocks;
  List.iteri
    (fun i b ->
      (* Print the block header when the block has arguments, when the
         region has several blocks, or when some branch names the block
         as a successor — an argument-less successor target in a
         single-block region would otherwise lose its label and the
         branch could not re-parse. *)
      if
        Array.length b.Core.bargs > 0
        || List.length r.Core.blocks > 1
        || Core.is_successor_target b
      then begin
        indent env level;
        Buffer.add_string env.buf (Printf.sprintf "^bb%d(" i);
        Buffer.add_string env.buf
          (String.concat ", "
             (List.map
                (fun a ->
                  value_name env a ^ ": " ^ Types.to_string a.Core.vty)
                (Core.block_args b)));
        Buffer.add_string env.buf "):\n"
      end;
      List.iter
        (fun o ->
          print_op env (level + 1) o;
          Buffer.add_char env.buf '\n')
        b.Core.body)
    r.Core.blocks;
  indent env level;
  Buffer.add_char env.buf '}'

let op_to_string ?(env = None) ?(debuginfo = false) op =
  let env =
    match env with
    | Some e -> e
    | None ->
      { buf = Buffer.create 1024; names = Hashtbl.create 64;
        block_names = Hashtbl.create 16; counter = 0; debuginfo }
  in
  Buffer.clear env.buf;
  print_op env 0 op;
  Buffer.contents env.buf

let to_string ?debuginfo op = op_to_string ?debuginfo op

let print ?(out = stdout) ?debuginfo op =
  output_string out (to_string ?debuginfo op);
  output_char out '\n'

let pp fmt op = Format.pp_print_string fmt (to_string op)

(** Short one-line description of an op, for diagnostics. *)
let summary (op : Core.op) =
  let env =
    { buf = Buffer.create 64; names = Hashtbl.create 8;
      block_names = Hashtbl.create 4; counter = 0; debuginfo = false }
  in
  Buffer.add_string env.buf op.name;
  Buffer.add_char env.buf '(';
  Buffer.add_string env.buf
    (String.concat ", " (List.map (value_name env) (Core.operands op)));
  Buffer.add_char env.buf ')';
  Buffer.contents env.buf
