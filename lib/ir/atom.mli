(** Interned strings for the hot identifiers of the IR — op names,
    attribute keys, printed type/attribute forms.

    An atom is a small dense integer with O(1) equality. Interning is
    thread-safe (mutex-protected table); [to_string] is lock-free and
    safe from any domain, so frozen registries may index by atom id
    concurrently. *)

type t = int

(** Intern [s], returning its atom. Idempotent; the first interning of a
    string fixes its id for the process lifetime. *)
val intern : string -> t

(** The canonical string of an atom. Raises [Invalid_argument] for an id
    never returned by {!intern}. *)
val to_string : t -> string

(** [canonical s] is the one shared string equal to [s] — comparing two
    canonical strings hits the physical-equality fast path. *)
val canonical : string -> string

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** Number of atoms interned so far (atom ids are [0 .. count () - 1]). *)
val count : unit -> int
