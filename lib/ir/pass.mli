(** Pass management: named passes over a module, pipelines, statistics and
    optional inter-pass verification — a small mirror of MLIR's
    PassManager. *)

(** Per-pass counters ("rewrites", "reduction.rewritten", ...). *)
module Stats : sig
  type t

  val create : unit -> t
  val bump : ?by:int -> t -> string -> unit
  val get : t -> string -> int
  val to_list : t -> (string * int) list
  val pp : Format.formatter -> t -> unit
end

type t = {
  pass_name : string;
  run : Core.op -> Stats.t -> unit;
}

val make : string -> (Core.op -> Stats.t -> unit) -> t

(** A pass running a function-level callback over every func.func. *)
val on_functions : string -> (Core.op -> Stats.t -> unit) -> t

exception
  Pass_failed of {
    pass : string;
    diagnostics : Verifier.diag list;
  }

type pipeline_result = {
  per_pass_stats : (string * Stats.t) list;
  per_pass_time : (string * float) list;  (** seconds *)
}

(** Run a pipeline over a module. With [verify_each] (default), the
    verifier runs after every pass and failures are attributed to the
    pass that just ran; [instrumentations] fire around every pass
    execution (see {!Instrument}). [remarks_sink] scopes an
    optimization-remark sink to exactly this pipeline run
    ({!Remarks.with_sink}): it is popped on the way out, so nested or
    concurrent pipelines keep their own streams. *)
val run_pipeline :
  ?verify_each:bool ->
  ?instrumentations:Instrument.t list ->
  ?remarks_sink:(Remarks.t -> unit) ->
  t list ->
  Core.op ->
  pipeline_result

(** All pass statistics merged into one table keyed ["pass/stat"]. *)
val merged_stats : pipeline_result -> Stats.t
