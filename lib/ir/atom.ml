(* Interned strings for the hot identifiers of the IR: op names, attribute
   keys, printed type/attribute forms. An atom is a small dense integer
   with O(1) equality; [to_string] returns the one canonical string per
   atom, so even plain string comparison of two canonical names hits the
   physical-equality fast path.

   Interning must be safe from compile-service worker domains: the
   forward table is mutex-protected, and the reverse table is published
   as an immutable array through an [Atomic.t] so [to_string] never takes
   the lock. *)

type t = int

let table : (string, int) Hashtbl.t = Hashtbl.create 256
let names : string array Atomic.t = Atomic.make [||]
let mutex = Mutex.create ()

let intern s =
  Mutex.protect mutex (fun () ->
      match Hashtbl.find_opt table s with
      | Some id -> id
      | None ->
        let arr = Atomic.get names in
        let id = Array.length arr in
        (* Copy-on-grow: readers of the previous snapshot stay valid. *)
        let arr' = Array.make (id + 1) s in
        Array.blit arr 0 arr' 0 id;
        Hashtbl.replace table s id;
        Atomic.set names arr';
        id)

let to_string id =
  let arr = Atomic.get names in
  if id < 0 || id >= Array.length arr then
    invalid_arg (Printf.sprintf "Atom.to_string: unknown atom %d" id)
  else arr.(id)

(** The canonical shared string equal to [s]. *)
let canonical s = to_string (intern s)

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Int.compare a b
let hash (a : t) = a

(** Number of atoms interned so far. *)
let count () = Array.length (Atomic.get names)
