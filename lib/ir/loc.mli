(** MLIR-style source locations carried by every {!Core.op}. *)

type t =
  | Unknown
  | File of { file : string; line : int; col : int }
  | Name of string * t
  | CallSite of { callee : t; caller : t }
  | Fused of t list

val unknown : t
val file : file:string -> line:int -> col:int -> t

(** [name n] / [name ~child n]: a named location, optionally wrapping a
    child position. *)
val name : ?child:t -> string -> t

(** Canonicalizing constructor: an [Unknown] side collapses to the other. *)
val callsite : callee:t -> caller:t -> t

(** Canonicalizing constructor: flattens nested [Fused], drops [Unknown]s,
    deduplicates; [[]] is [Unknown], a singleton is the location itself. *)
val fused : t list -> t

val equal : t -> t -> bool
val is_known : t -> bool

(** MLIR textual syntax, inner form (no [loc(...)] wrapper): [unknown],
    ["f.cpp":3:1], ["name"], ["name"("f.cpp":3:1)],
    [callsite(l1 at l2)], [fused[l1, l2]]. *)
val to_string : t -> string

(** First concrete [(file, line, col)] reachable from the location. *)
val resolve : t -> (string * int * int) option

(** [Some "file:line:col"] when resolvable. *)
val render : t -> string option

(** ["file:line:col: "] or [""] — prepend to diagnostic messages. *)
val diag_prefix : t -> string

(** Human-readable chain ("inlined from", fusion components) for error
    reports. *)
val describe : t -> string
