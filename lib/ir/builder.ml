(* Insertion-point based IR construction, mirroring MLIR's OpBuilder. *)

type insertion_point =
  | At_end of Core.block
  | Before of Core.op

type t = {
  mutable ip : insertion_point option;
  (* Default source location stamped (by [insert]) onto inserted ops that
     carry no location of their own. Lets a pass set the location once per
     rewrite site instead of threading ?loc through every dialect helper. *)
  mutable default_loc : Loc.t;
}

let create () = { ip = None; default_loc = Loc.Unknown }

let at_end block = { ip = Some (At_end block); default_loc = Loc.Unknown }
let before op = { ip = Some (Before op); default_loc = Loc.Unknown }

let set_insertion_point_to_end b block = b.ip <- Some (At_end block)
let set_insertion_point_before b op = b.ip <- Some (Before op)
let set_insertion_point_after b op =
  (* Inserting "after op" = remembering the op following it, or block end. *)
  match op.Core.parent_block with
  | None -> invalid_arg "set_insertion_point_after: detached op"
  | Some block ->
    let rec find = function
      | [] -> invalid_arg "set_insertion_point_after: op not in block"
      | o :: rest when o == op -> (
        match rest with [] -> At_end block | next :: _ -> Before next)
      | _ :: rest -> find rest
    in
    b.ip <- Some (find block.Core.body)

let after op =
  let b = create () in
  set_insertion_point_after b op;
  b

let insertion_block b =
  match b.ip with
  | Some (At_end block) -> Some block
  | Some (Before op) -> op.Core.parent_block
  | None -> None

let set_default_loc b loc = b.default_loc <- loc
let default_loc b = b.default_loc

(** Run [f] with the default location temporarily set to [loc]. *)
let with_loc b loc f =
  let saved = b.default_loc in
  b.default_loc <- loc;
  Fun.protect ~finally:(fun () -> b.default_loc <- saved) f

(** Create an op at the current insertion point. Ops with no location of
    their own pick up the builder's default location. *)
let insert b op =
  (match b.ip with
  | None -> invalid_arg "Builder.insert: no insertion point"
  | Some (At_end block) -> Core.append_op block op
  | Some (Before anchor) -> Core.insert_before ~anchor op);
  if not (Loc.is_known op.Core.loc) then op.Core.loc <- b.default_loc;
  op

let op ?attrs ?regions ?successors ?loc ~operands ~result_types b name =
  insert b
    (Core.create_op ?attrs ?regions ?successors ?loc ~operands ~result_types
       name)

(** Like {!op} for single-result operations; returns the result value. *)
let op1 ?attrs ?regions ?successors ?loc ~operands ~result_type b name =
  let o =
    op ?attrs ?regions ?successors ?loc ~operands
      ~result_types:[ result_type ] b name
  in
  Core.result o 0

(** Like {!op} for zero-result operations; returns unit. *)
let op0 ?attrs ?regions ?successors ?loc ~operands b name =
  ignore (op ?attrs ?regions ?successors ?loc ~operands ~result_types:[] b name)

(** Run [f] with the insertion point temporarily moved to the end of
    [block], restoring it afterwards. *)
let within b block f =
  let saved = b.ip in
  b.ip <- Some (At_end block);
  Fun.protect ~finally:(fun () -> b.ip <- saved) f
