(* Operation attributes: compile-time constant data attached to operations,
   mirroring MLIR's attribute system. *)

type t =
  | Unit
  | Bool of bool
  | Int of int  (** Also used for index-typed constants. *)
  | Float of float
  | String of string
  | Type of Types.t
  | Symbol of string  (** A symbol reference, printed as [@name]. *)
  | Array of t list
  | Dense_int of int array
  | Dense_float of float array
  | Affine_map of Affine_expr.Map.t

(* Shortest decimal spelling that re-parses to exactly the same bits.
   Special values use spellings the lexer knows ([nan], [infinity],
   [-infinity]); finite values always contain '.' or 'e' so they cannot
   be read back as integer literals. *)
let float_to_string f =
  match Float.classify_float f with
  | FP_nan -> "nan"
  | FP_infinite -> if f > 0.0 then "infinity" else "-infinity"
  | _ ->
    let exact p =
      let s = Printf.sprintf "%.*g" p f in
      if float_of_string s = f then Some s else None
    in
    let s =
      match exact 15 with
      | Some s -> s
      | None -> (
        match exact 16 with Some s -> s | None -> Printf.sprintf "%.17g" f)
    in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"

(* String literal escaping matched to the lexer: only backslash-n,
   backslash-t, backslash-backslash, backslash-quote and [\xHH] (for
   every other byte outside printable ASCII). *)
let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when c >= ' ' && c < '\x7f' -> Buffer.add_char buf c
      | c -> Buffer.add_string buf (Printf.sprintf "\\x%02X" (Char.code c)))
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let rec to_string = function
  | Unit -> "unit"
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Float f -> float_to_string f
  | String s -> escape_string s
  | Type ty -> Types.to_string ty
  | Symbol s -> "@" ^ s
  | Array xs -> "[" ^ String.concat ", " (List.map to_string xs) ^ "]"
  | Dense_int xs ->
    "dense_i<"
    ^ String.concat ", " (Array.to_list (Array.map string_of_int xs))
    ^ ">"
  | Dense_float xs ->
    "dense_f<"
    ^ String.concat ", " (Array.to_list (Array.map float_to_string xs))
    ^ ">"
  | Affine_map m -> "affine_map<" ^ Affine_expr.Map.to_string m ^ ">"

let pp fmt a = Format.pp_print_string fmt (to_string a)

(* Structural equality via [compare] rather than [=] so [Float nan]
   equals itself (polymorphic [=] uses IEEE comparison on floats, which
   would make any nan-carrying attribute unequal to its parsed copy). *)
let equal (a : t) (b : t) = compare a b = 0

(* Accessors returning [None] on kind mismatch. *)
let as_int = function Int i -> Some i | Bool b -> Some (Bool.to_int b) | _ -> None
let as_float = function Float f -> Some f | _ -> None
let as_string = function String s -> Some s | _ -> None
let as_bool = function Bool b -> Some b | Int i -> Some (i <> 0) | _ -> None
let as_type = function Type t -> Some t | _ -> None
let as_symbol = function Symbol s -> Some s | _ -> None
let as_array = function Array a -> Some a | _ -> None
let as_affine_map = function Affine_map m -> Some m | _ -> None

(** Is this attribute a numeric constant usable for folding? *)
let is_numeric = function Int _ | Float _ | Bool _ -> true | _ -> false
