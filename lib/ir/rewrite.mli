(** Pattern rewriting: a greedy pattern-application driver in the spirit
    of MLIR's [applyPatternsAndFoldGreedily], plus folding based on the
    registry's fold hooks. *)

type pattern = {
  pat_name : string;
  apply : Core.op -> bool;  (** true when it matched and rewrote *)
}

val pattern : string -> (Core.op -> bool) -> pattern

(** Dialects register how to materialize a constant attribute as an op
    (in practice: arith.constant). *)
val set_constant_materializer :
  (Builder.t -> Attr.t -> Types.t -> Core.value) -> unit

val materialize_constant : Builder.t -> Attr.t -> Types.t -> Core.value

(** The constant attribute produced by a registered, zero-operand,
    constant-like op. *)
val constant_value : Core.op -> Attr.t option

(** The constant attribute of a value's defining op, if constant-like. *)
val constant_of_value : Core.value -> Attr.t option

(** Try to fold an op in place; on success all uses are replaced and the
    op erased. *)
val try_fold : Core.op -> bool

(** Erase the op if it is pure (including nested ops) and unused. *)
val erase_if_dead : Core.op -> bool

(** Apply patterns plus folding and dead-op erasure greedily until a
    fixpoint (bounded by [max_iterations]). Returns the number of
    rewrites performed. [on_rewrite] fires once per rewrite with the
    enclosing function's symbol (captured before the rewrite), the kind
    ("fold", "dce", or the pattern name) and the rewritten op. *)
val apply_greedily :
  ?max_iterations:int ->
  ?on_rewrite:(func:string -> string -> Core.op -> unit) ->
  Core.op ->
  pattern list ->
  int
