(** Pattern rewriting: a greedy pattern-application driver in the spirit
    of MLIR's [applyPatternsAndFoldGreedily], plus folding based on the
    registry's fold hooks. *)

type pattern = {
  pat_name : string;
  apply : Core.op -> bool;  (** true when it matched and rewrote *)
}

val pattern : string -> (Core.op -> bool) -> pattern

(** Dialects register how to materialize a constant attribute as an op
    (in practice: arith.constant). *)
val set_constant_materializer :
  (Builder.t -> Attr.t -> Types.t -> Core.value) -> unit

val materialize_constant : Builder.t -> Attr.t -> Types.t -> Core.value

(** The constant attribute produced by a registered, zero-operand,
    constant-like op. *)
val constant_value : Core.op -> Attr.t option

(** The constant attribute of a value's defining op, if constant-like. *)
val constant_of_value : Core.value -> Attr.t option

(** Try to fold an op in place; on success all uses are replaced and the
    op erased. *)
val try_fold : Core.op -> bool

(** Erase the op if it is pure (including nested ops) and unused. *)
val erase_if_dead : Core.op -> bool

(** {2 Drivers} *)

(** What a driver run did. [rw_converged] is [false] only for the legacy
    bounded driver, which can stop before fixpoint; the worklist driver
    either converges or raises {!Cap_exceeded}. *)
type stats = {
  rw_rewrites : int;  (** rewrites performed (folds, DCE, patterns) *)
  rw_ops_visited : int;  (** attached ops examined by the driver *)
  rw_converged : bool;  (** true when a real fixpoint was reached *)
}

(** Raised by the worklist driver when more than [cap] rewrites fire in
    one scope — a pattern set that never reaches fixpoint. Loud on
    purpose: the legacy driver's silent stop is the bug this replaces. *)
exception Cap_exceeded of { scope : string; rewrites : int; cap : int }

(** Worklist driver: seed with every op, re-enqueue only the users of
    replaced values, the defining ops of dropped operands, the parents
    of erased ops, and newly inserted ops. Runs to a true fixpoint with
    cost proportional to rewrites performed. [cap] bounds the number of
    rewrites (default: generous, proportional to the scope size);
    exceeding it raises {!Cap_exceeded}. *)
val apply_worklist :
  ?cap:int ->
  ?on_rewrite:(func:string -> string -> Core.op -> unit) ->
  Core.op ->
  pattern list ->
  stats

(** The seed driver, kept for differential testing ({e fuzz oracle (h)})
    and the [--rewrite-driver legacy] flag: re-walks the whole scope up
    to [max_iterations] times and can stop silently before fixpoint
    ([rw_converged = false]). *)
val apply_greedily_legacy :
  ?max_iterations:int ->
  ?on_rewrite:(func:string -> string -> Core.op -> unit) ->
  Core.op ->
  pattern list ->
  stats

(** {2 Driver selection} *)

type driver =
  | Worklist  (** the default: use-def-driven, true fixpoint *)
  | Legacy  (** bounded re-walk, seed behaviour *)

val driver_of_string : string -> driver option
val driver_to_string : driver -> string

(** Process-global default used by {!apply_greedily} (set from
    [sycl-mlir-opt --rewrite-driver]). Initially [Worklist]. *)
val set_default_driver : driver -> unit

val get_default_driver : unit -> driver

(** Apply patterns plus folding and dead-op erasure to fixpoint with the
    process-default driver. [on_rewrite] fires once per rewrite with the
    enclosing function's symbol (captured before the rewrite), the kind
    ("fold", "dce", or the pattern name) and the rewritten op. *)
val apply_greedily :
  ?on_rewrite:(func:string -> string -> Core.op -> unit) ->
  Core.op ->
  pattern list ->
  stats
