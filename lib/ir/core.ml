(* The IR object graph: SSA values, operations, blocks and regions, with the
   nesting structure that MLIR uses (an op holds regions, a region holds
   blocks, a block holds ops). Operations are generic records identified by a
   "dialect.op" name; dialects provide smart constructors and register
   semantic information in {!Op_registry}. *)

type value = {
  vid : int;
  mutable vty : Types.t;
  mutable vdef : vdef;
  (* Use list: (op, operand index) pairs, maintained by the mutators below.
     All operand mutation must go through [set_operand]/[erase_op]. *)
  mutable uses : (op * int) list;
}

and vdef =
  | Op_result of op * int
  | Block_arg of block * int

and op = {
  oid : int;
  name : string;
  (* Interned id of [name]; [name] itself is the canonical shared string
     for that atom, so string equality on names is a pointer check. *)
  name_id : Atom.t;
  mutable operands : value array;
  mutable results : value array;
  mutable attrs : (string * Attr.t) list;
  regions : region array;
  (* CFG successor blocks (terminators only), printed as [^bb1, ^bb2].
     Successors always belong to the region holding the op's block. *)
  mutable successors : block array;
  mutable parent_block : block option;
  (* Source location (MLIR-style). The parser records textual positions,
     builders stamp defaults, transforms propagate deliberately. *)
  mutable loc : Loc.t;
}

and block = {
  bid : int;
  mutable bargs : value array;
  mutable body : op list;
  mutable parent_region : region option;
}

and region = {
  rid : int;
  mutable blocks : block list;
  mutable parent_op : op option;
}

(* Ids are minted from one process-wide atomic counter. A plain [ref] +
   [incr] here let two domains compiling concurrently read the same
   counter value and mint duplicate [oid]s/[vid]s, silently corrupting
   every oid-keyed table downstream (LICM hoist sets, CSE value tables,
   dominance caches, printer name maps). *)
let next_id =
  let counter = Atomic.make 0 in
  fun () -> Atomic.fetch_and_add counter 1 + 1

(* ------------------------------------------------------------------ *)
(* Mutation listeners                                                  *)
(* ------------------------------------------------------------------ *)

(* A rewrite driver installs a listener to learn which ops a mutation may
   have made rewritable again (MLIR's RewriterBase::Listener). The stack
   is domain-local, like the remark sink: listeners installed on one
   compile-service worker never observe another worker's mutations. *)
type listener = {
  (* An op (with everything nested in it) was attached to a block. *)
  on_op_inserted : op -> unit;
  (* [on_operand_replaced user old]: one of [user]'s operands changed
     away from [old] (so [old]'s defining op may have become dead and
     [user] may fold differently). *)
  on_operand_replaced : op -> value -> unit;
  (* Fires just before the op is detached, while its parent block and
     operand use-lists are still intact. *)
  on_op_erased : op -> unit;
}

let listeners_key : listener list Domain.DLS.key =
  Domain.DLS.new_key (fun () -> [])

let notify_listeners f =
  match Domain.DLS.get listeners_key with
  | [] -> ()
  | ls -> List.iter f ls

(** Run [f] with [l] installed (stacked over any existing listeners). *)
let with_listener l f =
  let old = Domain.DLS.get listeners_key in
  Domain.DLS.set listeners_key (l :: old);
  Fun.protect ~finally:(fun () -> Domain.DLS.set listeners_key old) f

(* ------------------------------------------------------------------ *)
(* Values                                                              *)
(* ------------------------------------------------------------------ *)

let value_type v = v.vty

let defining_op v =
  match v.vdef with Op_result (op, _) -> Some op | Block_arg _ -> None

let result_index v =
  match v.vdef with Op_result (_, i) -> Some i | Block_arg _ -> None

let value_equal a b = a.vid = b.vid

let uses v = v.uses
let has_uses v = v.uses <> []
let num_uses v = List.length v.uses

(* ------------------------------------------------------------------ *)
(* Op construction                                                     *)
(* ------------------------------------------------------------------ *)

let add_use v op idx = v.uses <- (op, idx) :: v.uses

let remove_use v op idx =
  v.uses <- List.filter (fun (o, i) -> not (o == op && i = idx)) v.uses

(** Create a detached operation. Results are fresh values; regions are given
    already-built (detached) regions whose parent is patched here. *)
let create_op ?(attrs = []) ?(regions = []) ?(successors = [])
    ?(loc = Loc.Unknown) ~operands ~result_types name =
  let name_id = Atom.intern name in
  let op =
    {
      oid = next_id ();
      name = Atom.to_string name_id;
      name_id;
      operands = Array.of_list operands;
      results = [||];
      attrs;
      regions = Array.of_list regions;
      successors = Array.of_list successors;
      parent_block = None;
      loc;
    }
  in
  op.results <-
    Array.of_list
      (List.mapi
         (fun i ty ->
           { vid = next_id (); vty = ty; vdef = Op_result (op, i); uses = [] })
         result_types);
  Array.iteri (fun i v -> add_use v op i) op.operands;
  Array.iter (fun r -> r.parent_op <- Some op) op.regions;
  op

let create_block ?(args = []) () =
  let blk = { bid = next_id (); bargs = [||]; body = []; parent_region = None } in
  blk.bargs <-
    Array.of_list
      (List.mapi
         (fun i ty ->
           { vid = next_id (); vty = ty; vdef = Block_arg (blk, i); uses = [] })
         args);
  blk

let create_region ?(blocks = []) () =
  let r = { rid = next_id (); blocks; parent_op = None } in
  List.iter (fun b -> b.parent_region <- Some r) blocks;
  r

(** A region with a single empty entry block carrying [args]. *)
let region_with_block ?(args = []) () =
  let b = create_block ~args () in
  create_region ~blocks:[ b ] ()

let entry_block r =
  match r.blocks with
  | b :: _ -> b
  | [] -> invalid_arg "Core.entry_block: empty region"

let block_args b = Array.to_list b.bargs
let block_arg b i = b.bargs.(i)

let add_block_arg b ty =
  let i = Array.length b.bargs in
  let v = { vid = next_id (); vty = ty; vdef = Block_arg (b, i); uses = [] } in
  b.bargs <- Array.append b.bargs [| v |];
  v

let result op i = op.results.(i)
let results op = Array.to_list op.results
let num_results op = Array.length op.results
let operand op i = op.operands.(i)
let operands op = Array.to_list op.operands
let num_operands op = Array.length op.operands

let attr op key = List.assoc_opt key op.attrs

let set_attr op key a =
  op.attrs <- (key, a) :: List.remove_assoc key op.attrs

let remove_attr op key = op.attrs <- List.remove_assoc key op.attrs

let attr_int op key = Option.bind (attr op key) Attr.as_int
let attr_string op key = Option.bind (attr op key) Attr.as_string
let attr_symbol op key = Option.bind (attr op key) Attr.as_symbol
let attr_type op key = Option.bind (attr op key) Attr.as_type
let has_attr op key = attr op key <> None

let region op i = op.regions.(i)
let num_regions op = Array.length op.regions

let successor op i = op.successors.(i)
let successors op = Array.to_list op.successors
let num_successors op = Array.length op.successors
let set_successors op bs = op.successors <- Array.of_list bs

(** Is [block] the target of some successor edge within its region? *)
let is_successor_target (block : block) =
  match block.parent_region with
  | None -> false
  | Some r ->
    List.exists
      (fun b ->
        List.exists
          (fun o -> Array.exists (fun s -> s == block) o.successors)
          b.body)
      r.blocks

(* ------------------------------------------------------------------ *)
(* Mutation                                                            *)
(* ------------------------------------------------------------------ *)

let set_operand op i v =
  let old = op.operands.(i) in
  if not (value_equal old v) then begin
    remove_use old op i;
    op.operands.(i) <- v;
    add_use v op i;
    notify_listeners (fun l -> l.on_operand_replaced op old)
  end

let set_operands op vs =
  let olds = op.operands in
  Array.iteri (fun i old -> remove_use old op i) olds;
  op.operands <- Array.of_list vs;
  Array.iteri (fun i v -> add_use v op i) op.operands;
  Array.iteri
    (fun i old ->
      let changed =
        i >= Array.length op.operands || not (value_equal op.operands.(i) old)
      in
      if changed then notify_listeners (fun l -> l.on_operand_replaced op old))
    olds

let replace_all_uses_with old_v new_v =
  (* Copy: set_operand mutates the use list we're iterating. *)
  let us = old_v.uses in
  List.iter (fun (op, i) -> set_operand op i new_v) us

let replace_uses_if old_v new_v pred =
  let us = old_v.uses in
  List.iter (fun (op, i) -> if pred op then set_operand op i new_v) us

(* Block body surgery. Ops are compared physically (each op record is
   unique), so list rebuilding is safe. *)

let append_op block op =
  assert (op.parent_block = None);
  block.body <- block.body @ [ op ];
  op.parent_block <- Some block;
  notify_listeners (fun l -> l.on_op_inserted op)

let prepend_op block op =
  assert (op.parent_block = None);
  block.body <- op :: block.body;
  op.parent_block <- Some block;
  notify_listeners (fun l -> l.on_op_inserted op)

let insert_before ~anchor op =
  match anchor.parent_block with
  | None -> invalid_arg "insert_before: anchor is detached"
  | Some block ->
    assert (op.parent_block = None);
    let rec go = function
      | [] -> invalid_arg "insert_before: anchor not in its block"
      | o :: rest when o == anchor -> op :: o :: rest
      | o :: rest -> o :: go rest
    in
    block.body <- go block.body;
    op.parent_block <- Some block;
    notify_listeners (fun l -> l.on_op_inserted op)

let insert_after ~anchor op =
  match anchor.parent_block with
  | None -> invalid_arg "insert_after: anchor is detached"
  | Some block ->
    assert (op.parent_block = None);
    let rec go = function
      | [] -> invalid_arg "insert_after: anchor not in its block"
      | o :: rest when o == anchor -> o :: op :: rest
      | o :: rest -> o :: go rest
    in
    block.body <- go block.body;
    op.parent_block <- Some block;
    notify_listeners (fun l -> l.on_op_inserted op)

(** Detach [op] from its block without touching its operands' use lists. *)
let detach_op op =
  match op.parent_block with
  | None -> ()
  | Some block ->
    block.body <- List.filter (fun o -> not (o == op)) block.body;
    op.parent_block <- None

exception Has_uses of op

(** Remove [op] entirely: drops operand uses; fails if results are used. *)
let erase_op op =
  Array.iter (fun r -> if has_uses r then raise (Has_uses op)) op.results;
  (* Notify while the parent block and operand uses are still in place. *)
  notify_listeners (fun l -> l.on_op_erased op);
  detach_op op;
  Array.iteri (fun i v -> remove_use v op i) op.operands

(** Erase without checking uses (for bulk deletion of whole regions). *)
let erase_op_unsafe op =
  notify_listeners (fun l -> l.on_op_erased op);
  detach_op op;
  Array.iteri (fun i v -> remove_use v op i) op.operands

(** Move [op] (possibly attached elsewhere) to just before [anchor]. *)
let move_before ~anchor op =
  detach_op op;
  insert_before ~anchor op

let move_to_end block op =
  detach_op op;
  append_op block op

(* ------------------------------------------------------------------ *)
(* Navigation and traversal                                            *)
(* ------------------------------------------------------------------ *)

let parent_op_of_block b =
  Option.bind b.parent_region (fun r -> r.parent_op)

let parent_op op = Option.bind op.parent_block parent_op_of_block

let rec ancestors op =
  match parent_op op with None -> [] | Some p -> p :: ancestors p

(** Is [anc] a (transitive) ancestor op of [op]? *)
let is_ancestor ~anc op = List.exists (fun a -> a == anc) (ancestors op)

(** Is the block containing [op] nested inside (or equal to) [region]? *)
let rec is_in_region region op =
  match op.parent_block with
  | None -> false
  | Some b -> (
    match b.parent_region with
    | None -> false
    | Some r ->
      r == region
      || (match r.parent_op with None -> false | Some p -> is_in_region region p))

(** Pre-order walk over [op] and every op nested in its regions. *)
let rec walk op ~f =
  f op;
  Array.iter
    (fun r ->
      List.iter (fun b -> List.iter (fun o -> walk o ~f) b.body) r.blocks)
    op.regions

(** Walk, but a snapshot of each block body is taken first so [f] may erase
    or insert ops while walking. *)
let rec walk_mutable op ~f =
  f op;
  Array.iter
    (fun r ->
      List.iter
        (fun b ->
          let snapshot = b.body in
          List.iter (fun o -> if o.parent_block <> None then walk_mutable o ~f) snapshot)
        r.blocks)
    op.regions

let walk_region region ~f =
  List.iter (fun b -> List.iter (fun o -> walk o ~f) b.body) region.blocks

(** Collect ops satisfying [p] in pre-order. *)
let collect op ~p =
  let acc = ref [] in
  walk op ~f:(fun o -> if p o then acc := o :: !acc);
  List.rev !acc

let collect_named op name = collect op ~p:(fun o -> o.name = name)

(** First op (pre-order, excluding [op] itself) satisfying [p]. *)
let find_first op ~p =
  let exception Found of op in
  match
    walk op ~f:(fun o -> if (not (o == op)) && p o then raise (Found o))
  with
  | () -> None
  | exception Found o -> Some o

(* ------------------------------------------------------------------ *)
(* Module / function helpers                                           *)
(* ------------------------------------------------------------------ *)

let module_name = "builtin.module"
let func_name = "func.func"

let create_module () =
  create_op module_name ~operands:[] ~result_types:[] ~regions:[ region_with_block () ]

let module_block m =
  assert (m.name = module_name);
  entry_block m.regions.(0)

let is_module op = op.name = module_name
let is_func op = op.name = func_name

let func_sym op = match attr_string op "sym_name" with Some s -> s | None -> "?"

let lookup_func m name =
  List.find_opt
    (fun o -> is_func o && func_sym o = name)
    (module_block m).body

let funcs m = List.filter is_func (module_block m).body

(** The function type of a func.func op. *)
let func_type op =
  match attr_type op "function_type" with
  | Some (Types.Function (a, r)) -> (a, r)
  | _ -> invalid_arg "func_type: op has no function_type attribute"

let func_body op =
  assert (is_func op);
  entry_block op.regions.(0)

(** Enclosing func.func of an op, if any. *)
let rec enclosing_func op =
  if is_func op then Some op
  else match parent_op op with None -> None | Some p -> enclosing_func p

(** Position of [op] among the ops of its block (0-based), if attached. *)
let op_index_in_block op =
  match op.parent_block with
  | None -> None
  | Some b ->
    let rec go i = function
      | [] -> None
      | o :: _ when o == op -> Some i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 b.body

(** Structural path of [op] below its enclosing function (or module when
    there is none): op names with block positions, outermost first, e.g.
    ["scf.for#2 > arith.addi#0"]. The enclosing func itself is excluded. *)
let op_path op =
  let component o =
    match op_index_in_block o with
    | Some i -> Printf.sprintf "%s#%d" o.name i
    | None -> o.name
  in
  let rec above o acc =
    match parent_op o with
    | None -> acc
    | Some p when is_func p || is_module p -> acc
    | Some p -> above p (component p :: acc)
  in
  String.concat " > " (above op [ component op ])

(** Deep-copy [op] and everything nested in it. [value_map] carries the
    mapping from old to new values; operands defined outside the cloned
    subtree map to themselves. *)
let rec clone_op ?(value_map = Hashtbl.create 16) ?(block_map = Hashtbl.create 8)
    op =
  let map_value v =
    match Hashtbl.find_opt value_map v.vid with Some v' -> v' | None -> v
  in
  let map_block b =
    match Hashtbl.find_opt block_map b.bid with Some b' -> b' | None -> b
  in
  let regions =
    Array.to_list op.regions
    |> List.map (fun r ->
           let blocks =
             List.map
               (fun b ->
                 let nb =
                   create_block ~args:(List.map (fun a -> a.vty) (block_args b)) ()
                 in
                 Array.iteri
                   (fun i a -> Hashtbl.replace value_map a.vid nb.bargs.(i))
                   b.bargs;
                 Hashtbl.replace block_map b.bid nb;
                 (b, nb))
               r.blocks
           in
           List.iter
             (fun (b, nb) ->
               List.iter
                 (fun o -> append_op nb (clone_op ~value_map ~block_map o))
                 b.body)
             blocks;
           create_region ~blocks:(List.map snd blocks) ())
    |> fun rs -> rs
  in
  let cloned =
    create_op op.name
      ~operands:(List.map map_value (operands op))
      ~result_types:(List.map (fun r -> r.vty) (results op))
      ~attrs:op.attrs ~regions ~loc:op.loc
      ~successors:(List.map map_block (Array.to_list op.successors))
  in
  Array.iteri
    (fun i r -> Hashtbl.replace value_map r.vid cloned.results.(i))
    op.results;
  cloned
