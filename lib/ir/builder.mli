(** Insertion-point based IR construction, mirroring MLIR's [OpBuilder]. *)

type insertion_point =
  | At_end of Core.block
  | Before of Core.op

type t = {
  mutable ip : insertion_point option;
  mutable default_loc : Loc.t;
}

val create : unit -> t

(** Builders positioned at a block end / before an op / after an op. *)
val at_end : Core.block -> t

val before : Core.op -> t
val after : Core.op -> t

val set_insertion_point_to_end : t -> Core.block -> unit
val set_insertion_point_before : t -> Core.op -> unit
val set_insertion_point_after : t -> Core.op -> unit

val insertion_block : t -> Core.block option

(** Default source location stamped by {!insert} onto inserted ops that
    carry no location of their own ([Loc.Unknown]). *)
val set_default_loc : t -> Loc.t -> unit

val default_loc : t -> Loc.t

(** Run a function with the default location temporarily replaced. *)
val with_loc : t -> Loc.t -> (unit -> 'a) -> 'a

(** Insert a detached op at the current insertion point; stamps the
    builder's default location if the op's own is [Unknown]. *)
val insert : t -> Core.op -> Core.op

(** Create and insert an op. *)
val op :
  ?attrs:(string * Attr.t) list ->
  ?regions:Core.region list ->
  ?successors:Core.block list ->
  ?loc:Loc.t ->
  operands:Core.value list ->
  result_types:Types.t list ->
  t ->
  string ->
  Core.op

(** Like {!op} for single-result ops; returns the result value. *)
val op1 :
  ?attrs:(string * Attr.t) list ->
  ?regions:Core.region list ->
  ?successors:Core.block list ->
  ?loc:Loc.t ->
  operands:Core.value list ->
  result_type:Types.t ->
  t ->
  string ->
  Core.value

(** Like {!op} for zero-result ops. *)
val op0 :
  ?attrs:(string * Attr.t) list ->
  ?regions:Core.region list ->
  ?successors:Core.block list ->
  ?loc:Loc.t ->
  operands:Core.value list ->
  t ->
  string ->
  unit

(** Run a function with the insertion point temporarily moved to the end
    of a block, restoring it afterwards. *)
val within : t -> Core.block -> (unit -> 'a) -> 'a
