(* Pattern rewriting: a small greedy pattern-application driver in the
   spirit of MLIR's applyPatternsAndFoldGreedily, plus folding based on the
   registry's fold hooks. *)

type pattern = {
  pat_name : string;
  (* Returns true when it matched and rewrote the IR. *)
  apply : Core.op -> bool;
}

let pattern pat_name apply = { pat_name; apply }

(* Dialects register how to materialize a constant attribute as an op (in
   practice: arith.constant). *)
let constant_materializer :
    (Builder.t -> Attr.t -> Types.t -> Core.value) option ref =
  ref None

let set_constant_materializer f = constant_materializer := Some f

let materialize_constant builder attr ty =
  match !constant_materializer with
  | Some f -> f builder attr ty
  | None -> invalid_arg "no constant materializer registered"

(** The constant attribute produced by [op] if it is a registered,
    foldable, zero-operand constant-like op. *)
let constant_value (op : Core.op) : Attr.t option =
  if Core.num_operands op = 0 && Core.num_results op = 1 then
    match (Op_registry.info op).Op_registry.fold op [||] with
    | Some (Op_registry.Fold_attrs [ a ]) -> Some a
    | _ -> None
  else None

(** The constant attribute of [v]'s defining op, if constant-like. *)
let constant_of_value (v : Core.value) : Attr.t option =
  Option.bind (Core.defining_op v) constant_value

(** Try to fold [op] in place: if every result folds to a constant or an
    existing value, replace all uses and erase [op]. Returns true on
    success. *)
let try_fold (op : Core.op) : bool =
  if Core.num_results op = 0 then false
  else
    let const_operands =
      Array.map (fun v -> constant_of_value v) op.Core.operands
    in
    match (Op_registry.info op).Op_registry.fold op const_operands with
    | None -> false
    | Some (Op_registry.Fold_values vs) ->
      List.iteri (fun i v -> Core.replace_all_uses_with (Core.result op i) v) vs;
      Core.erase_op op;
      true
    | Some (Op_registry.Fold_attrs attrs) ->
      if constant_value op <> None then
        (* Already a constant op; nothing to do. *)
        false
      else begin
        let builder = Builder.before op in
        (* Constants materialized for a folded op keep the op's location. *)
        Builder.set_default_loc builder op.Core.loc;
        List.iteri
          (fun i a ->
            let v =
              materialize_constant builder a (Core.result op i).Core.vty
            in
            Core.replace_all_uses_with (Core.result op i) v)
          attrs;
        Core.erase_op op;
        true
      end

(** Erase [op] if it is pure (including nested ops) and unused. *)
let erase_if_dead (op : Core.op) : bool =
  if
    (not (Op_registry.is_terminator op))
    && Array.for_all (fun r -> not (Core.has_uses r)) op.Core.results
    && Op_registry.is_pure op
    && Core.num_results op > 0
  then begin
    (* Pure ops have no nested code with effects; safe to drop wholesale. *)
    Core.walk op ~f:(fun o -> if not (o == op) then Core.erase_op_unsafe o);
    Core.erase_op op;
    true
  end
  else false

(** Apply [patterns] plus folding greedily until fixpoint (bounded). The
    scope is [top] and everything nested in it. Returns the number of
    rewrites performed. [on_rewrite] fires once per rewrite with the
    enclosing function's symbol (captured before the rewrite, since the
    op may be erased by it), the kind ("fold", "dce", or the pattern
    name) and the rewritten op — callers use it for per-pattern
    statistics and optimization remarks. *)
let apply_greedily ?(max_iterations = 10)
    ?(on_rewrite = fun ~func:(_ : string) (_ : string) (_ : Core.op) -> ())
    (top : Core.op) patterns =
  let total = ref 0 in
  let changed = ref true in
  let iter = ref 0 in
  while !changed && !iter < max_iterations do
    changed := false;
    incr iter;
    (* Snapshot the ops: patterns may mutate the IR. *)
    let ops = ref [] in
    Core.walk top ~f:(fun o -> if not (o == top) then ops := o :: !ops);
    List.iter
      (fun op ->
        (* Skip ops that a previous rewrite already detached. *)
        if op.Core.parent_block <> None then begin
          let func =
            match Core.enclosing_func op with
            | Some f -> Core.func_sym f
            | None -> "?"
          in
          if try_fold op then begin
            changed := true;
            incr total;
            on_rewrite ~func "fold" op
          end
          else if erase_if_dead op then begin
            changed := true;
            incr total;
            on_rewrite ~func "dce" op
          end
          else
            List.iter
              (fun p ->
                if op.Core.parent_block <> None && p.apply op then begin
                  changed := true;
                  incr total;
                  on_rewrite ~func p.pat_name op
                end)
              patterns
        end)
      (List.rev !ops)
  done;
  !total
