(* Pattern rewriting: a small greedy pattern-application driver in the
   spirit of MLIR's applyPatternsAndFoldGreedily, plus folding based on the
   registry's fold hooks. *)

type pattern = {
  pat_name : string;
  (* Returns true when it matched and rewrote the IR. *)
  apply : Core.op -> bool;
}

let pattern pat_name apply = { pat_name; apply }

(* Dialects register how to materialize a constant attribute as an op (in
   practice: arith.constant). *)
let constant_materializer :
    (Builder.t -> Attr.t -> Types.t -> Core.value) option ref =
  ref None

let set_constant_materializer f = constant_materializer := Some f

let materialize_constant builder attr ty =
  match !constant_materializer with
  | Some f -> f builder attr ty
  | None -> invalid_arg "no constant materializer registered"

(** The constant attribute produced by [op] if it is a registered,
    foldable, zero-operand constant-like op. *)
let constant_value (op : Core.op) : Attr.t option =
  if Core.num_operands op = 0 && Core.num_results op = 1 then
    match (Op_registry.info op).Op_registry.fold op [||] with
    | Some (Op_registry.Fold_attrs [ a ]) -> Some a
    | _ -> None
  else None

(** The constant attribute of [v]'s defining op, if constant-like. *)
let constant_of_value (v : Core.value) : Attr.t option =
  Option.bind (Core.defining_op v) constant_value

(** Try to fold [op] in place: if every result folds to a constant or an
    existing value, replace all uses and erase [op]. Returns true on
    success. *)
let try_fold (op : Core.op) : bool =
  if Core.num_results op = 0 then false
  else
    let const_operands =
      Array.map (fun v -> constant_of_value v) op.Core.operands
    in
    match (Op_registry.info op).Op_registry.fold op const_operands with
    | None -> false
    | Some (Op_registry.Fold_values vs) ->
      List.iteri (fun i v -> Core.replace_all_uses_with (Core.result op i) v) vs;
      Core.erase_op op;
      true
    | Some (Op_registry.Fold_attrs attrs) ->
      if constant_value op <> None then
        (* Already a constant op; nothing to do. *)
        false
      else begin
        let builder = Builder.before op in
        (* Constants materialized for a folded op keep the op's location. *)
        Builder.set_default_loc builder op.Core.loc;
        List.iteri
          (fun i a ->
            let v =
              materialize_constant builder a (Core.result op i).Core.vty
            in
            Core.replace_all_uses_with (Core.result op i) v)
          attrs;
        Core.erase_op op;
        true
      end

(** Erase [op] if it is pure (including nested ops) and unused. *)
let erase_if_dead (op : Core.op) : bool =
  if
    (not (Op_registry.is_terminator op))
    && Array.for_all (fun r -> not (Core.has_uses r)) op.Core.results
    && Op_registry.is_pure op
    && Core.num_results op > 0
  then begin
    (* Pure ops have no nested code with effects; safe to drop wholesale. *)
    Core.walk op ~f:(fun o -> if not (o == op) then Core.erase_op_unsafe o);
    Core.erase_op op;
    true
  end
  else false

(* ------------------------------------------------------------------ *)
(* Drivers                                                             *)
(* ------------------------------------------------------------------ *)

(** What a driver run did. [rw_converged] is [false] only for the legacy
    bounded driver, which can stop before fixpoint; the worklist driver
    either converges or raises {!Cap_exceeded}. *)
type stats = {
  rw_rewrites : int;  (** rewrites performed (folds, DCE, patterns) *)
  rw_ops_visited : int;  (** attached ops popped/examined by the driver *)
  rw_converged : bool;  (** true when a real fixpoint was reached *)
}

exception Cap_exceeded of { scope : string; rewrites : int; cap : int }

let () =
  Printexc.register_printer (function
    | Cap_exceeded { scope; rewrites; cap } ->
      Some
        (Printf.sprintf
           "Rewrite.Cap_exceeded: %d rewrites under %s exceeded the safety \
            cap of %d — a pattern set that never reaches fixpoint (a \
            rewrite loop), not a case for raising the bound silently"
           rewrites scope cap)
    | _ -> None)

(* Shared single-op step: fold, then DCE, then each pattern in order.
   Returns true when some rewrite fired. *)
let visit_op ~on_rewrite ~count patterns op =
  let func =
    match Core.enclosing_func op with
    | Some f -> Core.func_sym f
    | None -> "?"
  in
  if try_fold op then begin
    count ();
    on_rewrite ~func "fold" op;
    true
  end
  else if erase_if_dead op then begin
    count ();
    on_rewrite ~func "dce" op;
    true
  end
  else
    List.fold_left
      (fun changed p ->
        if op.Core.parent_block <> None && p.apply op then begin
          count ();
          on_rewrite ~func p.pat_name op;
          true
        end
        else changed)
      false patterns

let no_rewrite = fun ~func:(_ : string) (_ : string) (_ : Core.op) -> ()

(** The seed driver, kept for differential testing: re-walk the whole
    scope until nothing changes or [max_iterations] sweeps have run. It
    can stop {e before} fixpoint — silently — which is exactly the bug
    the worklist driver fixes; [rw_converged] reports whether the last
    sweep was quiescent. *)
let apply_greedily_legacy ?(max_iterations = 10) ?(on_rewrite = no_rewrite)
    (top : Core.op) patterns =
  let total = ref 0 in
  let visited = ref 0 in
  let changed = ref true in
  let iter = ref 0 in
  while !changed && !iter < max_iterations do
    changed := false;
    incr iter;
    (* Snapshot the ops: patterns may mutate the IR. *)
    let ops = ref [] in
    Core.walk top ~f:(fun o -> if not (o == top) then ops := o :: !ops);
    List.iter
      (fun op ->
        (* Skip ops that a previous rewrite already detached. *)
        if op.Core.parent_block <> None then begin
          incr visited;
          let count () =
            incr total;
            changed := true
          in
          ignore (visit_op ~on_rewrite ~count patterns op)
        end)
      (List.rev !ops)
  done;
  { rw_rewrites = !total; rw_ops_visited = !visited; rw_converged = not !changed }

(** Worklist driver: seed with every op in pre-order, then re-enqueue
    only what a rewrite may have changed — the users of replaced values,
    the defining ops of dropped operands (they may be dead now), the
    parents of erased ops, and newly inserted ops. Runs to a true
    fixpoint with cost proportional to rewrites performed; a scope that
    keeps rewriting past [cap] raises {!Cap_exceeded} instead of
    silently returning half-canonicalized IR. *)
let apply_worklist ?cap ?(on_rewrite = no_rewrite) (top : Core.op) patterns =
  let queue = Queue.create () in
  let queued : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  let enqueue op =
    if (not (op == top)) && not (Hashtbl.mem queued op.Core.oid) then begin
      Hashtbl.replace queued op.Core.oid ();
      Queue.add op queue
    end
  in
  Core.walk top ~f:enqueue;
  let seeded = Queue.length queue in
  (* Generous: proportional to the scope, never a fixed small constant.
     Any real pattern set performs O(ops) rewrites; only a rewrite loop
     (two patterns undoing each other, a fold that re-creates its input)
     can reach this. *)
  let cap = match cap with Some c -> c | None -> 1_000 + (100 * seeded) in
  let enqueue_def v =
    match Core.defining_op v with Some d -> enqueue d | None -> ()
  in
  let listener =
    {
      Core.on_op_inserted = (fun o -> Core.walk o ~f:enqueue);
      on_operand_replaced =
        (fun user old ->
          (* The user may now fold; the old value's producer may be dead. *)
          enqueue user;
          enqueue_def old);
      on_op_erased =
        (fun o ->
          (* The parent may simplify (e.g. an emptied region); operand
             producers may have lost their last use. *)
          (match Core.parent_op o with Some p -> enqueue p | None -> ());
          Array.iter enqueue_def o.Core.operands);
    }
  in
  let total = ref 0 in
  let visited = ref 0 in
  let scope =
    match Core.enclosing_func top with
    | Some f -> Core.func_sym f
    | None -> top.Core.name
  in
  let count () =
    incr total;
    if !total > cap then
      raise (Cap_exceeded { scope; rewrites = !total; cap })
  in
  Core.with_listener listener (fun () ->
      while not (Queue.is_empty queue) do
        let op = Queue.pop queue in
        Hashtbl.remove queued op.Core.oid;
        (* A queued op may have been erased or detached since. *)
        if op.Core.parent_block <> None then begin
          incr visited;
          ignore (visit_op ~on_rewrite ~count patterns op)
        end
      done);
  { rw_rewrites = !total; rw_ops_visited = !visited; rw_converged = true }

(* ------------------------------------------------------------------ *)
(* Driver selection                                                    *)
(* ------------------------------------------------------------------ *)

type driver =
  | Worklist
  | Legacy

let driver_of_string = function
  | "worklist" -> Some Worklist
  | "legacy" -> Some Legacy
  | _ -> None

let driver_to_string = function Worklist -> "worklist" | Legacy -> "legacy"

(* Process-global so `sycl-mlir-opt --rewrite-driver legacy` can pin the
   seed behaviour for before/after byte-identical comparisons. *)
let default_driver : driver Atomic.t = Atomic.make Worklist

let set_default_driver d = Atomic.set default_driver d
let get_default_driver () = Atomic.get default_driver

(** Apply [patterns] plus folding and dead-op erasure to fixpoint over
    [top] and everything nested in it, with the process-default driver.
    [on_rewrite] fires once per rewrite with the enclosing function's
    symbol (captured before the rewrite, since the op may be erased by
    it), the kind ("fold", "dce", or the pattern name) and the rewritten
    op — callers use it for per-pattern statistics and remarks. *)
let apply_greedily ?on_rewrite (top : Core.op) patterns =
  match Atomic.get default_driver with
  | Worklist -> apply_worklist ?on_rewrite top patterns
  | Legacy -> apply_greedily_legacy ?on_rewrite top patterns
