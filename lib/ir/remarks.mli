(** Optimization remarks in the style of LLVM's [-Rpass] /
    [-Rpass-missed] / [-Rpass-analysis]: passes emit structured records
    saying what they did ([Passed]), what they wanted to do but could
    not, and why ([Missed]), and what they learned ([Analysis]).

    Emission goes through a domain-local sink stack mirroring LLVM's
    remark streamer: with no sink installed, {!emit} is a near-no-op, so
    instrumented passes cost nothing in normal compilation. *)

type kind =
  | Passed
  | Missed
  | Analysis

val kind_to_string : kind -> string
val kind_of_string : string -> kind option

type t = {
  r_pass : string;  (** emitting pass, e.g. ["licm"] *)
  r_name : string;  (** remark identifier, e.g. ["hoisted-mem"] *)
  r_kind : kind;
  r_func : string;  (** enclosing function / kernel ("?" when unknown) *)
  r_op : string;  (** op name the remark anchors to ("" when none) *)
  r_message : string;  (** human-readable reason *)
  r_loc : Loc.t;  (** source location of the anchor op ([Unknown] when none) *)
}

(** Is a sink installed (in this domain)? Passes may use this to skip
    expensive message construction. *)
val enabled : unit -> bool

(** Sinks form a domain-local stack: {!install} pushes, {!uninstall}
    pops — restoring the outer sink, so nested or concurrent pipelines
    cannot steal or drop each other's sinks. {!emit} broadcasts to every
    stacked sink, innermost first. *)
val install : (t -> unit) -> unit

val uninstall : unit -> unit

(** [with_sink f body] runs [body] with [f] as the innermost sink,
    popping it on the way out (exceptions included). *)
val with_sink : (t -> unit) -> (unit -> 'a) -> 'a

(** [isolated f body] runs [body] with [f] as the {e only} sink visible
    in this domain (outer sinks are hidden, and restored afterwards).
    The compile service uses this to capture a request's remarks exactly
    once regardless of which domain compiles it. *)
val isolated : (t -> unit) -> (unit -> 'a) -> 'a

(** Deliver an already-built remark to the current domain's installed
    sinks (no-op without one) — replaying collected or cached remarks on
    the caller's domain, in the caller's chosen order. *)
val broadcast : t -> unit

(** Emit a remark. The enclosing function name and source location are
    derived from [op] when [func] / [loc] are not given. No-op when no
    sink is installed. *)
val emit :
  pass:string ->
  name:string ->
  kind ->
  ?op:Core.op ->
  ?func:string ->
  ?loc:Loc.t ->
  string ->
  unit

(** Run a function with a collecting sink installed; returns its result
    and the remarks emitted during it, in order. An outer sink (if any)
    still receives every remark, so collectors nest. *)
val collect : (unit -> 'a) -> 'a * t list

(** ["[file:line:col: ]remark: <func>: <message> [-Rpass=<pass>:<name>]"]
    — prefixed with the resolved source position when the remark carries
    one. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** Structured form, for embedding in larger documents. *)
val to_json_value : t -> Json.t

val to_json : t -> string
val list_to_json : t list -> string

exception Json_error of string

(** Parse what {!list_to_json} produces. Raises {!Json_error}. *)
val parse_json_remarks : string -> t list
