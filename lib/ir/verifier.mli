(** IR verification: SSA visibility, block structure (terminators),
    use-list consistency and per-op registered invariants. *)

type diag = {
  message : string;
  culprit : Core.op option;
  d_loc : Loc.t;  (** culprit's source location at failure time *)
  d_context : string;
      (** enclosing function and op path ("@gemm: scf.for#1 > arith.addi#0"),
          rendered when the diagnostic was created *)
}

(** ["[file:line:col: ]<message> (in @func: path — op(%a, %b))[ [at chain]]"].
    The location prefix appears when the culprit carries a resolvable
    position; structured locations also print their full chain. *)
val diag_to_string : diag -> string

exception Verification_failed of diag list

(** Verify an op and everything nested in it. With
    [allow_unregistered = false], operations without a registry entry are
    also reported. *)
val verify : ?allow_unregistered:bool -> Core.op -> (unit, diag list) result

val verify_exn : ?allow_unregistered:bool -> Core.op -> unit

(** {2 Helpers for dialect verify hooks} *)

val check_num_operands : Core.op -> int -> (unit, string) result
val check_num_results : Core.op -> int -> (unit, string) result
val check_num_regions : Core.op -> int -> (unit, string) result

val check_operand_type :
  Core.op -> int -> (Types.t -> bool) -> expected:string -> (unit, string) result

(** Result-monad bind over [(unit, string) result]. *)
val ( let* ) : (unit, 'e) result -> (unit -> (unit, 'e) result) -> (unit, 'e) result
