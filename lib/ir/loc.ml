(* MLIR-style source locations (UnknownLoc, FileLineColLoc, NameLoc,
   CallSiteLoc, FusedLoc). Every op carries one; the parser records textual
   positions, transforms propagate them deliberately, and the diagnostics
   engine (remarks, verifier, simulator) renders them back to the user.

   Printing uses MLIR's textual syntax for the *inner* form (the printer
   wraps it in [loc(...)]):
     unknown
     "file":line:col
     "name"            and  "name"("file":1:2)
     callsite(callee at caller)
     fused[loc1, loc2] *)

type t =
  | Unknown
  | File of { file : string; line : int; col : int }
  | Name of string * t
  | CallSite of { callee : t; caller : t }
  | Fused of t list

let unknown = Unknown
let file ~file ~line ~col = File { file; line; col }

let rec equal a b =
  match (a, b) with
  | Unknown, Unknown -> true
  | File a, File b -> a.file = b.file && a.line = b.line && a.col = b.col
  | Name (na, ca), Name (nb, cb) -> na = nb && equal ca cb
  | CallSite a, CallSite b -> equal a.callee b.callee && equal a.caller b.caller
  | Fused a, Fused b ->
    List.length a = List.length b && List.for_all2 equal a b
  | _ -> false

let is_known = function Unknown -> false | _ -> true

(* Smart constructors used by transforms (and irgen): they canonicalize so
   that locations built programmatically survive the print -> parse -> print
   fixpoint oracle and never accumulate useless structure. The parser itself
   builds raw constructors — it reproduces exactly what the text says. *)

let name ?(child = Unknown) n = Name (n, child)

let callsite ~callee ~caller =
  match (callee, caller) with
  | Unknown, Unknown -> Unknown
  | Unknown, l | l, Unknown -> l
  | _ -> CallSite { callee; caller }

(** Flatten nested [Fused], drop [Unknown]s, deduplicate (keeping first
    occurrence); [] collapses to [Unknown] and a singleton to the location
    itself. *)
let fused locs =
  let rec flatten l acc =
    match l with
    | Unknown -> acc
    | Fused ls -> List.fold_left (fun acc l -> flatten l acc) acc ls
    | l -> if List.exists (equal l) acc then acc else l :: acc
  in
  match List.rev (List.fold_left (fun acc l -> flatten l acc) [] locs) with
  | [] -> Unknown
  | [ l ] -> l
  | ls -> Fused ls

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let rec to_string = function
  | Unknown -> "unknown"
  | File { file; line; col } ->
    (* escape_string wraps its argument in quotes *)
    Printf.sprintf "%s:%d:%d" (Attr.escape_string file) line col
  | Name (n, Unknown) -> Attr.escape_string n
  | Name (n, child) ->
    Printf.sprintf "%s(%s)" (Attr.escape_string n) (to_string child)
  | CallSite { callee; caller } ->
    Printf.sprintf "callsite(%s at %s)" (to_string callee) (to_string caller)
  | Fused ls ->
    Printf.sprintf "fused[%s]" (String.concat ", " (List.map to_string ls))

(* ------------------------------------------------------------------ *)
(* Diagnostics helpers                                                 *)
(* ------------------------------------------------------------------ *)

(** Best-effort resolution to a concrete [(file, line, col)]: the first
    file position found walking Name children, CallSite callee-then-caller,
    and Fused components in order. *)
let rec resolve = function
  | Unknown -> None
  | File { file; line; col } -> Some (file, line, col)
  | Name (_, child) -> resolve child
  | CallSite { callee; caller } -> (
    match resolve callee with Some _ as r -> r | None -> resolve caller)
  | Fused ls -> List.find_map resolve ls

(** [Some "file:line:col"] when a concrete position is resolvable. *)
let render l =
  match resolve l with
  | Some (f, ln, c) -> Some (Printf.sprintf "%s:%d:%d" f ln c)
  | None -> None

(** Compiler-style diagnostic prefix: ["file:line:col: "], or [""] when the
    location carries no concrete position. *)
let diag_prefix l =
  match render l with Some s -> s ^ ": " | None -> ""

(** Human-readable location chain for error reports: expands call sites as
    "inlined from" steps and names fusion components. *)
let rec describe = function
  | Unknown -> "<unknown location>"
  | File { file; line; col } -> Printf.sprintf "%s:%d:%d" file line col
  | Name (n, Unknown) -> Printf.sprintf "\"%s\"" n
  | Name (n, child) -> Printf.sprintf "\"%s\" at %s" n (describe child)
  | CallSite { callee; caller } ->
    Printf.sprintf "%s (inlined from %s)" (describe callee) (describe caller)
  | Fused ls ->
    Printf.sprintf "fused<%s>" (String.concat "; " (List.map describe ls))
