(* IR verification: SSA visibility, block structure, per-op registered
   invariants. Used by the pass manager between passes (when enabled) and
   by tests. *)

type diag = {
  message : string;
  culprit : Core.op option;
  d_loc : Loc.t;  (** culprit's source location at failure time *)
  d_context : string;  (** "@func: op path" rendered at failure time *)
}

(* The context is rendered when the diagnostic is created: passes erase
   and detach ops after verification, so the path may not be computable
   later. Even location-less IR gets "@func: scf.for#1 > arith.addi#0"
   instead of bare value ids. *)
let context_of (op : Core.op) =
  match Core.enclosing_func op with
  | Some f when not (Core.is_func op) ->
    Printf.sprintf "@%s: %s" (Core.func_sym f) (Core.op_path op)
  | Some f -> Printf.sprintf "@%s" (Core.func_sym f)
  | None -> Core.op_path op

let diag_to_string d =
  let chain =
    (* Structured locations (call sites, fusions, names) carry history a
       bare file:line:col prefix cannot show — spell the chain out. *)
    match d.d_loc with
    | Loc.Unknown | Loc.File _ -> ""
    | l -> Printf.sprintf " [at %s]" (Loc.describe l)
  in
  match d.culprit with
  | None -> Loc.diag_prefix d.d_loc ^ d.message ^ chain
  | Some op ->
    Printf.sprintf "%s%s (in %s — %s)%s"
      (Loc.diag_prefix d.d_loc)
      d.message d.d_context (Printer.summary op) chain

exception Verification_failed of diag list

let verify ?(allow_unregistered = true) (top : Core.op) =
  let diags = ref [] in
  let fail ?op fmt =
    Printf.ksprintf
      (fun message ->
        let d_loc, d_context =
          match op with
          | Some o -> (o.Core.loc, context_of o)
          | None -> (Loc.Unknown, "")
        in
        diags := { message; culprit = op; d_loc; d_context } :: !diags)
      fmt
  in
  let check_op op =
    (* Operand visibility. *)
    Array.iteri
      (fun i v ->
        if not (Dominance.value_visible_at v op) then
          fail ~op "operand %d does not dominate its use" i)
      op.Core.operands;
    (* Registration and op-specific checks. *)
    (match Op_registry.lookup op.Core.name with
    | Some info -> (
      match info.Op_registry.verify op with
      | Ok () -> ()
      | Error msg -> fail ~op "%s" msg)
    | None ->
      if not allow_unregistered then
        fail ~op "unregistered operation '%s'" op.Core.name);
    (* Region structure: every non-empty block in a code-bearing region
       must end with a terminator when the op expects sequential bodies. *)
    let info = Op_registry.info op in
    (match info.Op_registry.control with
    | Op_registry.Leaf -> ()
    | Op_registry.Seq | Op_registry.Branch | Op_registry.Loop ->
      Array.iter
        (fun r ->
          List.iter
            (fun b ->
              match List.rev b.Core.body with
              | [] -> ()
              | last :: _ ->
                if
                  (not (Op_registry.is_terminator last))
                  && not (Core.is_module op)
                then
                  fail ~op:last "block does not end with a terminator"
            )
            r.Core.blocks)
        op.Core.regions);
    (* Successor sanity: only terminators may carry successors, and every
       successor must be a block of the region enclosing this op. *)
    if Core.num_successors op > 0 then begin
      if not (Op_registry.is_terminator op) then
        fail ~op "only terminators may have block successors";
      let enclosing_blocks =
        match op.Core.parent_block with
        | Some b -> (
          match b.Core.parent_region with
          | Some r -> r.Core.blocks
          | None -> [])
        | None -> []
      in
      Array.iteri
        (fun i _ ->
          let s = Core.successor op i in
          if not (List.exists (fun b -> b == s) enclosing_blocks) then
            fail ~op "successor %d is not a block of the enclosing region" i)
        op.Core.successors;
      (match op.Core.parent_block with
      | Some b -> (
        match List.rev b.Core.body with
        | last :: _ when last == op -> ()
        | _ -> fail ~op "terminator with successors must end its block")
      | None -> ())
    end;
    (* Use-list sanity: every operand's use list mentions this op. *)
    Array.iteri
      (fun i v ->
        if not (List.exists (fun (o, j) -> o == op && i = j) v.Core.uses) then
          fail ~op "use-list corruption for operand %d" i)
      op.Core.operands
  in
  Core.walk top ~f:check_op;
  match List.rev !diags with [] -> Ok () | ds -> Error ds

let verify_exn ?allow_unregistered top =
  match verify ?allow_unregistered top with
  | Ok () -> ()
  | Error ds -> raise (Verification_failed ds)

(* Common per-op check helpers for dialects to build their verify hooks. *)

let check_num_operands op n =
  if Core.num_operands op = n then Ok ()
  else
    Error
      (Printf.sprintf "expected %d operands, got %d" n (Core.num_operands op))

let check_num_results op n =
  if Core.num_results op = n then Ok ()
  else
    Error (Printf.sprintf "expected %d results, got %d" n (Core.num_results op))

let check_num_regions op n =
  if Core.num_regions op = n then Ok ()
  else
    Error (Printf.sprintf "expected %d regions, got %d" n (Core.num_regions op))

let check_operand_type op i pred ~expected =
  if i >= Core.num_operands op then
    Error (Printf.sprintf "missing operand %d" i)
  else if pred (Core.operand op i).Core.vty then Ok ()
  else
    Error
      (Printf.sprintf "operand %d must be %s, got %s" i expected
         (Types.to_string (Core.operand op i).Core.vty))

let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e
