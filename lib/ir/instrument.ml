(* Pass instrumentation, mirrored on MLIR's PassInstrumentation: hooks
   that fire around every pass execution in a pipeline, with the three
   built-in instrumentations the paper's workflow depends on —
   hierarchical timing (-mlir-timing), IR-change detection (flagging
   no-op pass runs via module fingerprints), and before/after IR
   snapshots (-mlir-print-ir-after / --dump-after). *)

type t = {
  i_name : string;
  before_pass : pass_name:string -> Core.op -> unit;
  after_pass : pass_name:string -> Core.op -> unit;
}

let make ?(before_pass = fun ~pass_name:_ _ -> ())
    ?(after_pass = fun ~pass_name:_ _ -> ()) i_name =
  { i_name; before_pass; after_pass }

let run_before (is : t list) ~pass_name m =
  List.iter (fun i -> i.before_pass ~pass_name m) is

(* After-hooks run in reverse registration order, like MLIR, so paired
   instrumentations nest properly. *)
let run_after (is : t list) ~pass_name m =
  List.iter (fun i -> i.after_pass ~pass_name m) (List.rev is)

(* ------------------------------------------------------------------ *)
(* Hierarchical timing (-mlir-timing)                                  *)
(* ------------------------------------------------------------------ *)

type timing_node = {
  t_name : string;
  mutable t_wall : float;  (** seconds, accumulated over executions *)
  mutable t_count : int;  (** number of executions merged in *)
  mutable t_children : timing_node list;  (** in first-execution order *)
}

let fresh_node name = { t_name = name; t_wall = 0.0; t_count = 0; t_children = [] }

type timer = {
  tm_root : timing_node;
  (* Stack of (node, start-time); the root is charged on [timing_report]. *)
  mutable tm_stack : (timing_node * float) list;
  tm_started : float;
}

let timer () =
  { tm_root = fresh_node "root"; tm_stack = []; tm_started = Unix.gettimeofday () }

(** The child of [parent] named [name], merged-by-name like mlir's
    TimingManager (repeated runs of a pass aggregate into one line). *)
let child_node parent name =
  match List.find_opt (fun c -> c.t_name = name) parent.t_children with
  | Some c -> c
  | None ->
    let c = fresh_node name in
    parent.t_children <- parent.t_children @ [ c ];
    c

let timing (tm : timer) =
  make "timing"
    ~before_pass:(fun ~pass_name _ ->
      let parent =
        match tm.tm_stack with (n, _) :: _ -> n | [] -> tm.tm_root
      in
      tm.tm_stack <- (child_node parent pass_name, Unix.gettimeofday ()) :: tm.tm_stack)
    ~after_pass:(fun ~pass_name:_ _ ->
      match tm.tm_stack with
      | (node, t0) :: rest ->
        node.t_wall <- node.t_wall +. (Unix.gettimeofday () -. t0);
        node.t_count <- node.t_count + 1;
        tm.tm_stack <- rest
      | [] -> ())

(** Snapshot of the timing tree; the root's wall time is the elapsed time
    since the timer was created (so "Rest" — time outside passes — is the
    difference between the root and the sum of its children). *)
let timing_report (tm : timer) =
  tm.tm_root.t_wall <- Unix.gettimeofday () -. tm.tm_started;
  tm.tm_root.t_count <- 1;
  tm.tm_root

let pp_timing fmt (root : timing_node) =
  let total = Float.max root.t_wall 1e-9 in
  let line indent name count wall =
    Format.fprintf fmt "  %9.4f (%5.1f%%)  %s%s%s@."
      wall
      (100.0 *. wall /. total)
      (String.make (2 * indent) ' ')
      name
      (if count > 1 then Printf.sprintf " (%d)" count else "")
  in
  Format.fprintf fmt
    "===%s===@.  ... Pass execution timing report ...@.===%s===@."
    (String.make 60 '-') (String.make 60 '-');
  Format.fprintf fmt "  Total Execution Time: %.4f seconds@.@." root.t_wall;
  Format.fprintf fmt "  ----Wall Time----  ----Name----@.";
  let rec walk indent node =
    List.iter
      (fun c ->
        line indent c.t_name c.t_count c.t_wall;
        walk (indent + 1) c)
      node.t_children
  in
  walk 0 root;
  let accounted =
    List.fold_left (fun a c -> a +. c.t_wall) 0.0 root.t_children
  in
  if root.t_wall -. accounted > 1e-6 then
    line 0 "Rest" 1 (root.t_wall -. accounted);
  line 0 "Total" 1 root.t_wall

(* ------------------------------------------------------------------ *)
(* IR-change detection                                                 *)
(* ------------------------------------------------------------------ *)

(** Structural fingerprint of a module: digest of its canonical textual
    form (the printer emits attributes sorted, so the fingerprint is
    insensitive to attribute insertion order). *)
let fingerprint (m : Core.op) = Digest.string (Printer.to_string m)

type change_log = {
  (* One entry per pass execution, in pipeline order. *)
  mutable cl_entries : (string * bool) list;  (** pass, changed-the-IR? *)
  mutable cl_before : Digest.t option;
}

let change_log () = { cl_entries = []; cl_before = None }

let changes (cl : change_log) = List.rev cl.cl_entries

(** Pass executions that left the module bit-identical (no-op runs — the
    signal that a pass in the pipeline is not earning its keep). *)
let noop_passes (cl : change_log) =
  List.filter_map (fun (p, changed) -> if changed then None else Some p)
    (changes cl)

let ir_change (cl : change_log) =
  make "ir-change"
    ~before_pass:(fun ~pass_name:_ m -> cl.cl_before <- Some (fingerprint m))
    ~after_pass:(fun ~pass_name m ->
      let changed =
        match cl.cl_before with
        | Some before -> not (Digest.equal before (fingerprint m))
        | None -> true
      in
      cl.cl_before <- None;
      cl.cl_entries <- (pass_name, changed) :: cl.cl_entries)

let pp_changes fmt (cl : change_log) =
  List.iter
    (fun (pass, changed) ->
      Format.fprintf fmt "  %-40s %s@." pass
        (if changed then "changed" else "no-op"))
    (changes cl)

(* ------------------------------------------------------------------ *)
(* Location coverage (--stats)                                         *)
(* ------------------------------------------------------------------ *)

(* Per-pass counts of ops carrying a known (non-Unknown) source location,
   before and after the pass — so location *loss* inside a pass (rewrites
   that drop or forget locations) is itself observable. *)

type loc_coverage_entry = {
  lc_pass : string;
  lc_before_known : int;
  lc_before_total : int;
  lc_after_known : int;
  lc_after_total : int;
}

(** A pass "lost" locations when it left more unknown-location ops behind
    than it found — i.e. it created or rewrote ops without propagating. *)
let loc_coverage_lost e =
  e.lc_after_total - e.lc_after_known > e.lc_before_total - e.lc_before_known

type loc_coverage_log = {
  mutable lcl_entries : loc_coverage_entry list;  (* reversed *)
  mutable lcl_pending : (int * int) option;  (* known, total before pass *)
}

let loc_coverage_log () = { lcl_entries = []; lcl_pending = None }
let loc_coverage_entries l = List.rev l.lcl_entries

let count_locs (m : Core.op) =
  let known = ref 0 and total = ref 0 in
  Core.walk m ~f:(fun o ->
      incr total;
      if Loc.is_known o.Core.loc then incr known);
  (!known, !total)

let loc_coverage (l : loc_coverage_log) =
  make "loc-coverage"
    ~before_pass:(fun ~pass_name:_ m -> l.lcl_pending <- Some (count_locs m))
    ~after_pass:(fun ~pass_name m ->
      let before_known, before_total =
        match l.lcl_pending with Some p -> p | None -> (0, 0)
      in
      l.lcl_pending <- None;
      let after_known, after_total = count_locs m in
      l.lcl_entries <-
        {
          lc_pass = pass_name;
          lc_before_known = before_known;
          lc_before_total = before_total;
          lc_after_known = after_known;
          lc_after_total = after_total;
        }
        :: l.lcl_entries)

let pp_loc_coverage fmt (l : loc_coverage_log) =
  Format.fprintf fmt "  %-40s %14s %14s@." "pass" "located before"
    "located after";
  List.iter
    (fun e ->
      Format.fprintf fmt "  %-40s %8d/%-5d %8d/%-5d%s@." e.lc_pass
        e.lc_before_known e.lc_before_total e.lc_after_known e.lc_after_total
        (if loc_coverage_lost e then "  LOST" else ""))
    (loc_coverage_entries l)

(* ------------------------------------------------------------------ *)
(* Verification after every pass (--verify-each)                       *)
(* ------------------------------------------------------------------ *)

(** [verify_after ()] runs {!Verifier.verify} on the module after every
    pass and hands any diagnostics to [sink] together with the name of
    the offending pass. The default sink prints to stderr; the fuzzing
    harness installs its own sink to record which pass broke the IR. *)
let verify_after
    ?(sink =
      fun ~pass_name diags ->
        List.iter
          (fun d ->
            Printf.eprintf "verify after %s: %s\n%!" pass_name
              (Verifier.diag_to_string d))
          diags)
    () =
  make "verify-after"
    ~after_pass:(fun ~pass_name m ->
      match Verifier.verify m with
      | Ok () -> ()
      | Error diags -> sink ~pass_name diags)

(* ------------------------------------------------------------------ *)
(* IR snapshots (--dump-before / --dump-after)                         *)
(* ------------------------------------------------------------------ *)

(** [dump ~filter ()] prints the module around every pass whose name
    matches [filter] (the literal pass name, or ["all"]). Output goes to
    [sink] (default: stderr), one banner + module text per firing. *)
let dump ?(sink = prerr_string) ?(before = false) ?(after = true)
    ~(filter : string) () =
  let matches pass_name = filter = "all" || filter = pass_name in
  let emit phase pass_name m =
    sink (Printf.sprintf "// ----- IR %s %s -----\n" phase pass_name);
    sink (Printer.to_string m)
  in
  make "ir-dump"
    ~before_pass:(fun ~pass_name m ->
      if before && matches pass_name then emit "before" pass_name m)
    ~after_pass:(fun ~pass_name m ->
      if after && matches pass_name then emit "after" pass_name m)
