(** Per-op-name semantic information, mirroring MLIR's op interfaces and
    traits.

    Dialects register an {!op_info} record for each operation they define;
    analyses and transformations query it generically — this is what lets
    e.g. the reaching-definition analysis reason about SYCL dialect
    operations without depending on the SYCL dialect. *)

type effect_kind =
  | Read
  | Write
  | Alloc
  | Free

type effect_target =
  | On_operand of int
  | On_result of int
  | Anywhere  (** an effect on unknown memory *)

type effect = effect_kind * effect_target

(** Result of the folding hook: every result is either a constant
    attribute or an existing value. *)
type fold_result =
  | Fold_attrs of Attr.t list
  | Fold_values of Core.value list

(** How an op's regions execute, driving the data-flow framework. *)
type control =
  | Leaf  (** no regions, or regions that are not code *)
  | Seq  (** each region executes once, in order *)
  | Branch  (** at most one region executes (scf.if) *)
  | Loop  (** the region executes zero or more times *)

type op_info = {
  memory_effects : Core.op -> effect list option;
      (** [None] = unknown behaviour; [Some []] = free of memory effects *)
  control : control;
  non_uniform_source : bool;
      (** trait: results differ between work-items of a work-group *)
  speculatable : bool;
  terminator : bool;
  fold : Core.op -> Attr.t option array -> fold_result option;
  verify : Core.op -> (unit, string) result;
}

(** All-unknown defaults. *)
val default_info : op_info

(** No memory effects, speculatable. *)
val pure_info : op_info

(** {2 Registration and freezing}

    Registration is an {e init-time-only} operation: dialects register
    their ops on a single domain before any concurrent compilation
    starts. Once every dialect has initialized, call {!freeze} — from
    then on the registry serves lookups from an immutable snapshot, so
    worker domains may query it concurrently without synchronization.

    After {!freeze}, [register] of an {e already-registered} name is a
    no-op (dialect [init] functions are idempotent and may run again),
    while [register] of a {e new} name raises [Invalid_argument]: new
    semantic information must not appear while workers are compiling.
    The compile service freezes the registry before spawning workers. *)

val register : string -> op_info -> unit
val register_pure : string -> unit

(** Snapshot the table and switch lookups to the immutable copy.
    Idempotent; later registrations of known names become no-ops. *)
val freeze : unit -> unit

val is_frozen : unit -> bool

(** Safe to call concurrently from any domain once {!freeze} has run;
    before that, only during the single-domain init phase. *)
val lookup : string -> op_info option

(** Info for an op (defaults when unregistered). *)
val info : Core.op -> op_info

val is_registered : string -> bool

(** {2 Queries} *)

val memory_effects : Core.op -> effect list option

(** The op {e and everything nested in it} is free of memory effects. *)
val is_pure : Core.op -> bool

val is_speculatable : Core.op -> bool
val is_terminator : Core.op -> bool
val is_non_uniform_source : Core.op -> bool

(** Effects of an op touching a specific value ([None] = unknown). *)
val effects_on_value : Core.op -> Core.value -> effect_kind list option

(** Does the op (shallowly) write/allocate/free, or read, any memory?
    [None] = unknown. *)
val writes_memory : Core.op -> bool option

val reads_memory : Core.op -> bool option
