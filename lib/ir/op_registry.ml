(* Per-op-name semantic information, mirroring MLIR's op interfaces and
   traits. Dialects register an {!op_info} record for each operation they
   define; analyses and transformations query it generically, which is what
   lets e.g. the reaching-definition analysis reason about SYCL dialect
   operations without depending on the SYCL dialect (Section V-B of the
   paper). *)

type effect_kind =
  | Read
  | Write
  | Alloc
  | Free

type effect_target =
  | On_operand of int
  | On_result of int
  | Anywhere  (** An effect on unknown memory. *)

type effect = effect_kind * effect_target

(** Result of the folding hook: every result is either a constant attribute
    or an existing value. *)
type fold_result =
  | Fold_attrs of Attr.t list
  | Fold_values of Core.value list

(** How an op's regions execute, used by the data-flow framework to drive
    fixpoints without dialect-specific knowledge. *)
type control =
  | Leaf  (** No regions (or regions are not code, e.g. a module symbol table). *)
  | Seq  (** Each region executes once, in order (func bodies, modules). *)
  | Branch  (** Exactly one region executes (scf.if). *)
  | Loop  (** The (first) region executes zero or more times (scf.for / affine.for). *)

type op_info = {
  (* [None] means the op's memory behaviour is unknown; [Some []] means the
     op is known to be free of memory effects. *)
  memory_effects : Core.op -> effect list option;
  control : control;
  (* Trait: the op is a known source of non-uniform values (e.g. the SYCL
     global-id getters, Section V-C). *)
  non_uniform_source : bool;
  (* The op may be speculatively executed / hoisted if its operands allow. *)
  speculatable : bool;
  (* The op is a region terminator (scf.yield, func.return, ...). *)
  terminator : bool;
  (* Constant folding hook, given constant-or-not operand attributes. *)
  fold : Core.op -> Attr.t option array -> fold_result option;
  (* Op-specific structural verification. *)
  verify : Core.op -> (unit, string) result;
}

let default_info =
  {
    memory_effects = (fun _ -> None);
    control = Leaf;
    non_uniform_source = false;
    speculatable = false;
    terminator = false;
    fold = (fun _ _ -> None);
    verify = (fun _ -> Ok ());
  }

(** Convenience: a pure (no memory effects, speculatable) op_info. *)
let pure_info = { default_info with memory_effects = (fun _ -> Some []); speculatable = true }

(* Registration happens once, at init time, on a single domain; lookups
   happen everywhere, including concurrently from compile-service worker
   domains. A plain shared Hashtbl would let a late [register] resize the
   bucket array underneath a concurrent [lookup] (a torn table). The
   contract (documented in the .mli) is therefore:

   - before {!freeze}: registration and lookup are init-phase,
     single-domain operations (exactly today's dialect-init flow);
     registrations racing each other are still serialized by a mutex.
   - {!freeze} snapshots the table into an immutable copy. From then on
     every lookup reads the snapshot, which is never mutated again, so
     concurrent reads are safe without a lock.
   - [register] after {!freeze} is a no-op for an already-registered
     name (dialect [init] functions are idempotent re-registrations and
     may legitimately run again, e.g. in tests) and an error for a new
     name — new semantic information must not appear while worker
     domains are compiling. *)
let table : (string, op_info) Hashtbl.t = Hashtbl.create 128
let table_mutex = Mutex.create ()

(* The frozen snapshot carries both the name-keyed copy (for [lookup] by
   arbitrary strings) and an atom-id-indexed array: [info] on the hot
   path becomes a single array read off the op's interned [name_id],
   with no hashing of the name at all. Atoms interned after the freeze
   index past the array's end — correctly reading as unregistered. *)
let frozen :
    ((string, op_info) Hashtbl.t * op_info option array) option Atomic.t =
  Atomic.make None

let register name info =
  match Atomic.get frozen with
  | Some (snapshot, _) ->
    if not (Hashtbl.mem snapshot name) then
      invalid_arg
        (Printf.sprintf
           "Op_registry.register: registry is frozen; cannot register new op %S \
            (dialects must register before Op_registry.freeze)"
           name)
  | None -> Mutex.protect table_mutex (fun () -> Hashtbl.replace table name info)

let register_pure name = register name pure_info

(** Idempotent: the first call snapshots, later calls are no-ops. *)
let freeze () =
  Mutex.protect table_mutex (fun () ->
      if Atomic.get frozen = None then begin
        let snapshot = Hashtbl.copy table in
        let by_id =
          Hashtbl.fold (fun name info acc -> (Atom.intern name, info) :: acc)
            snapshot []
        in
        let size =
          1 + List.fold_left (fun m (id, _) -> max m id) (-1) by_id
        in
        let arr = Array.make size None in
        List.iter (fun (id, info) -> arr.(id) <- Some info) by_id;
        Atomic.set frozen (Some (snapshot, arr))
      end)

let is_frozen () = Atomic.get frozen <> None

let lookup name =
  match Atomic.get frozen with
  | Some (snapshot, _) -> Hashtbl.find_opt snapshot name
  | None -> Hashtbl.find_opt table name

let info op =
  match Atomic.get frozen with
  | Some (_, arr) ->
    let id = op.Core.name_id in
    if id < Array.length arr then
      match Array.unsafe_get arr id with
      | Some i -> i
      | None -> default_info
    else default_info
  | None -> (
    match Hashtbl.find_opt table op.Core.name with
    | Some i -> i
    | None -> default_info)

let is_registered name = lookup name <> None

(* Queries used throughout the analyses. *)

let memory_effects op = (info op).memory_effects op

(** The op and everything nested in it is free of memory effects. *)
let rec is_pure op =
  (match memory_effects op with Some [] -> true | _ -> false)
  && Array.for_all
       (fun r ->
         List.for_all
           (fun b -> List.for_all is_pure b.Core.body)
           r.Core.blocks)
       op.Core.regions

let is_speculatable op = (info op).speculatable
let is_terminator op = (info op).terminator
let is_non_uniform_source op = (info op).non_uniform_source

let effects_on_value op v =
  match memory_effects op with
  | None -> None
  | Some effects ->
    Some
      (List.filter_map
         (fun (kind, target) ->
           match target with
           | On_operand i when Core.value_equal (Core.operand op i) v -> Some kind
           | On_result i when Core.value_equal (Core.result op i) v -> Some kind
           | On_operand _ | On_result _ -> None
           | Anywhere -> Some kind)
         effects)

(** Does the op (shallowly) write/alloc/free any memory? [None] = unknown. *)
let writes_memory op =
  match memory_effects op with
  | None -> None
  | Some effs ->
    Some (List.exists (fun (k, _) -> k = Write || k = Alloc || k = Free) effs)

let reads_memory op =
  match memory_effects op with
  | None -> None
  | Some effs -> Some (List.exists (fun (k, _) -> k = Read) effs)
