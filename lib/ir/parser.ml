(* Parser for the textual generic form emitted by {!Printer}. Hand-rolled
   lexer + recursive descent. Dialects can register custom type parsers
   (keyed by the identifier following a ['!'], e.g. [!sycl.id<2>]). *)

exception Parse_error of string

type token =
  | Ident of string        (* foo, arith.constant, memref, true, ... *)
  | Value_ref of string    (* %0, %arg1 *)
  | Block_ref of string    (* ^bb0 *)
  | Symbol_ref of string   (* @kernel *)
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  | Lparen | Rparen
  | Lbrace | Rbrace
  | Lbracket | Rbracket
  | Langle | Rangle
  | Comma | Colon | Equal | Arrow | Bang | Star | Plus | Minus | Question
  | Eof

let token_to_string = function
  | Ident s -> s
  | Value_ref s -> "%" ^ s
  | Block_ref s -> "^" ^ s
  | Symbol_ref s -> "@" ^ s
  | Int_lit i -> string_of_int i
  | Float_lit f -> Attr.float_to_string f
  | String_lit s -> Attr.escape_string s
  | Lparen -> "(" | Rparen -> ")"
  | Lbrace -> "{" | Rbrace -> "}"
  | Lbracket -> "[" | Rbracket -> "]"
  | Langle -> "<" | Rangle -> ">"
  | Comma -> "," | Colon -> ":" | Equal -> "=" | Arrow -> "->"
  | Bang -> "!" | Star -> "*" | Plus -> "+" | Minus -> "-" | Question -> "?"
  | Eof -> "<eof>"

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

type lexer = {
  src : string;
  mutable pos : int;
  mutable line : int;
  (* Position of the first character of the current line, for columns. *)
  mutable bol : int;
  (* Line/column (1-based) of the start of the most recent token. *)
  mutable tok_line : int;
  mutable tok_col : int;
}

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9') || c = '.' || c = '$'

let is_digit c = c >= '0' && c <= '9'

let error lx msg =
  raise (Parse_error (Printf.sprintf "line %d: %s" lx.line msg))

let peek_char lx = if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let rec skip_ws lx =
  match peek_char lx with
  | Some (' ' | '\t' | '\r') ->
    lx.pos <- lx.pos + 1;
    skip_ws lx
  | Some '\n' ->
    lx.pos <- lx.pos + 1;
    lx.line <- lx.line + 1;
    lx.bol <- lx.pos;
    skip_ws lx
  | Some '/' when lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = '/' ->
    while peek_char lx <> None && peek_char lx <> Some '\n' do
      lx.pos <- lx.pos + 1
    done;
    skip_ws lx
  | _ -> ()

let lex_while lx p =
  let start = lx.pos in
  while (match peek_char lx with Some c -> p c | None -> false) do
    lx.pos <- lx.pos + 1
  done;
  String.sub lx.src start (lx.pos - start)

let lex_number lx ~neg =
  (* Decimal integers (plus 0x hex integers) and decimal floats (1.5,
     2e3, 1.25e-7). Floats print in shortest-decimal form — C99 hex
     float literals (0x1.8p+3, as printed by %h) are rejected with an
     explicit error so a reintroduced hex printer cannot silently
     corrupt round-trips. *)
  let buf = Buffer.create 16 in
  if neg then Buffer.add_char buf '-';
  let add () =
    Buffer.add_char buf lx.src.[lx.pos];
    lx.pos <- lx.pos + 1
  in
  let digits p =
    while (match peek_char lx with Some c -> p c | None -> false) do
      add ()
    done
  in
  let is_hex c =
    is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
  in
  let first = lx.pos in
  digits is_digit;
  let is_float = ref false in
  (if lx.src.[first] = '0' && (peek_char lx = Some 'x' || peek_char lx = Some 'X')
   then begin
     add ();
     digits is_hex;
     if
       peek_char lx = Some '.' || peek_char lx = Some 'p'
       || peek_char lx = Some 'P'
     then
       error lx
         "hex float literals are not supported (floats print in decimal; \
          use e.g. 3.0 instead of 0x1.8p+1)"
   end
   else begin
     if peek_char lx = Some '.' then begin
       is_float := true;
       add ();
       digits is_digit
     end;
     if peek_char lx = Some 'e' || peek_char lx = Some 'E' then begin
       is_float := true;
       add ();
       if peek_char lx = Some '+' || peek_char lx = Some '-' then add ();
       digits is_digit
     end
   end);
  let s = Buffer.contents buf in
  if !is_float then
    match float_of_string_opt s with
    | Some f -> Float_lit f
    | None -> error lx (Printf.sprintf "bad float literal %S" s)
  else
    match int_of_string_opt s with
    | Some i -> Int_lit i
    | None -> error lx (Printf.sprintf "bad integer literal %S" s)

let lex_string lx =
  (* Opening quote consumed by caller. Escapes are exactly the ones the
     printer emits (backslash-n, backslash-t, backslash-backslash,
     backslash-quote, [\xHH]); anything else is an error rather than a
     silently dropped backslash. *)
  let buf = Buffer.create 16 in
  let hex_value c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> error lx (Printf.sprintf "bad hex digit %C in \\x escape" c)
  in
  let rec go () =
    match peek_char lx with
    | None -> error lx "unterminated string literal"
    | Some '"' -> lx.pos <- lx.pos + 1
    | Some '\\' ->
      lx.pos <- lx.pos + 1;
      (match peek_char lx with
      | Some 'n' -> Buffer.add_char buf '\n'; lx.pos <- lx.pos + 1
      | Some 't' -> Buffer.add_char buf '\t'; lx.pos <- lx.pos + 1
      | Some '\\' -> Buffer.add_char buf '\\'; lx.pos <- lx.pos + 1
      | Some '"' -> Buffer.add_char buf '"'; lx.pos <- lx.pos + 1
      | Some 'x' ->
        lx.pos <- lx.pos + 1;
        let hi =
          match peek_char lx with
          | Some c -> lx.pos <- lx.pos + 1; hex_value c
          | None -> error lx "unterminated \\x escape"
        in
        let lo =
          match peek_char lx with
          | Some c -> lx.pos <- lx.pos + 1; hex_value c
          | None -> error lx "unterminated \\x escape"
        in
        Buffer.add_char buf (Char.chr ((hi * 16) + lo))
      | Some c -> error lx (Printf.sprintf "unknown string escape \\%c" c)
      | None -> error lx "unterminated escape");
      go ()
    | Some c ->
      if c = '\n' then begin
        lx.line <- lx.line + 1;
        lx.bol <- lx.pos + 1
      end;
      Buffer.add_char buf c;
      lx.pos <- lx.pos + 1;
      go ()
  in
  go ();
  String_lit (Buffer.contents buf)

let next_token lx =
  skip_ws lx;
  lx.tok_line <- lx.line;
  lx.tok_col <- lx.pos - lx.bol + 1;
  match peek_char lx with
  | None -> Eof
  | Some c -> (
    match c with
    | '(' -> lx.pos <- lx.pos + 1; Lparen
    | ')' -> lx.pos <- lx.pos + 1; Rparen
    | '{' -> lx.pos <- lx.pos + 1; Lbrace
    | '}' -> lx.pos <- lx.pos + 1; Rbrace
    | '[' -> lx.pos <- lx.pos + 1; Lbracket
    | ']' -> lx.pos <- lx.pos + 1; Rbracket
    | '<' -> lx.pos <- lx.pos + 1; Langle
    | '>' -> lx.pos <- lx.pos + 1; Rangle
    | ',' -> lx.pos <- lx.pos + 1; Comma
    | ':' -> lx.pos <- lx.pos + 1; Colon
    | '=' -> lx.pos <- lx.pos + 1; Equal
    | '!' -> lx.pos <- lx.pos + 1; Bang
    | '*' -> lx.pos <- lx.pos + 1; Star
    | '+' -> lx.pos <- lx.pos + 1; Plus
    | '?' -> lx.pos <- lx.pos + 1; Question
    | '"' -> lx.pos <- lx.pos + 1; lex_string lx
    | '%' ->
      lx.pos <- lx.pos + 1;
      Value_ref (lex_while lx (fun c -> is_ident_char c))
    | '^' ->
      lx.pos <- lx.pos + 1;
      Block_ref (lex_while lx is_ident_char)
    | '@' ->
      lx.pos <- lx.pos + 1;
      Symbol_ref (lex_while lx is_ident_char)
    | '-' ->
      lx.pos <- lx.pos + 1;
      if peek_char lx = Some '>' then begin
        lx.pos <- lx.pos + 1;
        Arrow
      end
      else if (match peek_char lx with Some c -> is_digit c | None -> false) then
        lex_number lx ~neg:true
      else Minus
    | c when is_digit c -> lex_number lx ~neg:false
    | c when is_ident_start c -> Ident (lex_while lx is_ident_char)
    | c -> error lx (Printf.sprintf "unexpected character %C" c))

(* ------------------------------------------------------------------ *)
(* Parser state                                                        *)
(* ------------------------------------------------------------------ *)

(* Per-region block-label scope. Successor lists may reference a block
   before its header is seen, so labels resolve to placeholder blocks
   that the header later fills in. *)
type block_scope = {
  sc_blocks : (string, Core.block) Hashtbl.t;
  mutable sc_defined : string list;    (* labels with a header, reversed *)
  mutable sc_referenced : string list; (* labels used as successors *)
}

type t = {
  lx : lexer;
  file : string; (* name recorded in parsed File locations *)
  mutable tok : token;
  (* Line/column of the start of the current token [tok]. *)
  mutable tok_line : int;
  mutable tok_col : int;
  values : (string, Core.value) Hashtbl.t;
  mutable scopes : block_scope list; (* innermost region first *)
}

let advance p =
  p.tok <- next_token p.lx;
  p.tok_line <- p.lx.tok_line;
  p.tok_col <- p.lx.tok_col

let expect p tok =
  if p.tok = tok then advance p
  else
    error p.lx
      (Printf.sprintf "expected %s but found %s" (token_to_string tok)
         (token_to_string p.tok))

let expect_ident p =
  match p.tok with
  | Ident s -> advance p; s
  | t -> error p.lx (Printf.sprintf "expected identifier, found %s" (token_to_string t))

let accept p tok = if p.tok = tok then (advance p; true) else false

(* Dialect type parsers: keyed by the identifier after '!'. *)
let dialect_type_parsers : (string, t -> Types.t) Hashtbl.t = Hashtbl.create 8
let register_type_parser key f = Hashtbl.replace dialect_type_parsers key f

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

let rec parse_type p : Types.t =
  match p.tok with
  | Bang ->
    advance p;
    let key = expect_ident p in
    (match Hashtbl.find_opt dialect_type_parsers key with
    | Some f -> f p
    | None -> error p.lx (Printf.sprintf "no type parser registered for !%s" key))
  | Lparen ->
    (* Function type: (t, ...) -> t | (t, ...) *)
    advance p;
    let args = parse_type_list_until p Rparen in
    expect p Rparen;
    expect p Arrow;
    let results =
      if accept p Lparen then begin
        let rs = parse_type_list_until p Rparen in
        expect p Rparen;
        rs
      end
      else [ parse_type p ]
    in
    Types.Function (args, results)
  | Ident "index" -> advance p; Types.Index
  | Ident "f32" -> advance p; Types.F32
  | Ident "f64" -> advance p; Types.F64
  | Ident "none" -> advance p; Types.None_type
  | Ident s when String.length s > 1 && s.[0] = 'i'
                 && String.for_all is_digit (String.sub s 1 (String.length s - 1)) ->
    advance p;
    Types.Integer (int_of_string (String.sub s 1 (String.length s - 1)))
  | Ident "memref" ->
    advance p;
    expect p Langle;
    parse_memref_body p
  | t -> error p.lx (Printf.sprintf "expected type, found %s" (token_to_string t))

(* Everything after "memref<": zero or more "<dim> x " prefixes followed by
   the element type and an optional ", <space>". Dynamic dims are printed
   and lexed as '?'. *)
and parse_memref_body p =
  let dims = ref [] in
  let read_dim () =
    match p.tok with
    | Int_lit n -> advance p; Some (Some n)
    | Question -> advance p; Some None
    | _ -> None
  in
  let rec read_shape () =
    match read_dim () with
    | None -> ()
    | Some d -> (
      match p.tok with
      | Ident "x" ->
        advance p;
        dims := d :: !dims;
        read_shape ()
      | t ->
        error p.lx
          (Printf.sprintf "expected 'x' after memref dimension, found %s"
             (token_to_string t)))
  in
  read_shape ();
  let element = parse_type p in
  let space =
    if accept p Comma then begin
      let s = expect_ident p in
      match Types.memspace_of_string s with
      | Some sp -> sp
      | None -> error p.lx (Printf.sprintf "unknown memory space %s" s)
    end
    else Types.Global
  in
  expect p Rangle;
  Types.Memref { shape = List.rev !dims; element; space }

and parse_type_list_until p stop =
  if p.tok = stop then []
  else begin
    let t = parse_type p in
    if accept p Comma then t :: parse_type_list_until p stop else [ t ]
  end

(* ------------------------------------------------------------------ *)
(* Attributes                                                          *)
(* ------------------------------------------------------------------ *)

let rec parse_attr p : Attr.t =
  match p.tok with
  | Int_lit i -> advance p; Attr.Int i
  | Float_lit f -> advance p; Attr.Float f
  | String_lit s -> advance p; Attr.String s
  | Symbol_ref s -> advance p; Attr.Symbol s
  | Ident "true" -> advance p; Attr.Bool true
  | Ident "false" -> advance p; Attr.Bool false
  | Ident "unit" -> advance p; Attr.Unit
  | Ident "nan" -> advance p; Attr.Float Float.nan
  | Ident ("infinity" | "inf") -> advance p; Attr.Float Float.infinity
  | Minus -> (
    advance p;
    match p.tok with
    | Ident ("infinity" | "inf") -> advance p; Attr.Float Float.neg_infinity
    | Ident "nan" -> advance p; Attr.Float (Float.neg Float.nan)
    | t ->
      error p.lx
        (Printf.sprintf "expected nan/infinity after '-', found %s"
           (token_to_string t)))
  | Lbracket ->
    advance p;
    let rec elems () =
      if p.tok = Rbracket then []
      else
        let a = parse_attr p in
        if accept p Comma then a :: elems () else [ a ]
    in
    let xs = elems () in
    expect p Rbracket;
    Attr.Array xs
  | Ident "dense_i" ->
    advance p;
    expect p Langle;
    let rec ints () =
      match p.tok with
      | Int_lit i ->
        advance p;
        if accept p Comma then i :: ints () else [ i ]
      | _ -> []
    in
    let xs = ints () in
    expect p Rangle;
    Attr.Dense_int (Array.of_list xs)
  | Ident "dense_f" ->
    advance p;
    expect p Langle;
    let element () =
      match p.tok with
      | Float_lit f -> advance p; Some f
      | Int_lit i -> advance p; Some (float_of_int i)
      | Ident "nan" -> advance p; Some Float.nan
      | Ident ("infinity" | "inf") -> advance p; Some Float.infinity
      | Minus -> (
        advance p;
        match p.tok with
        | Ident ("infinity" | "inf") -> advance p; Some Float.neg_infinity
        | Ident "nan" -> advance p; Some (Float.neg Float.nan)
        | t ->
          error p.lx
            (Printf.sprintf "expected nan/infinity after '-', found %s"
               (token_to_string t)))
      | _ -> None
    in
    let rec floats () =
      match element () with
      | Some f -> if accept p Comma then f :: floats () else [ f ]
      | None -> []
    in
    let xs = floats () in
    expect p Rangle;
    Attr.Dense_float (Array.of_list xs)
  | Ident "affine_map" ->
    advance p;
    expect p Langle;
    let m = parse_affine_map p in
    expect p Rangle;
    Attr.Affine_map m
  | _ -> Attr.Type (parse_type p)

(* affine_map<(d0, d1)[s0] -> (e0, e1)> *)
and parse_affine_map p =
  expect p Lparen;
  let dims = ref [] in
  let rec read_dims () =
    match p.tok with
    | Ident d when String.length d > 1 && d.[0] = 'd' ->
      advance p;
      dims := d :: !dims;
      if accept p Comma then read_dims ()
    | _ -> ()
  in
  read_dims ();
  expect p Rparen;
  let num_dims = List.length !dims in
  let num_syms = ref 0 in
  if accept p Lbracket then begin
    let rec read_syms () =
      match p.tok with
      | Ident s when String.length s > 1 && s.[0] = 's' ->
        advance p;
        incr num_syms;
        if accept p Comma then read_syms ()
      | _ -> ()
    in
    read_syms ();
    expect p Rbracket
  end;
  expect p Arrow;
  expect p Lparen;
  let rec read_exprs () =
    if p.tok = Rparen then []
    else
      let e = parse_affine_expr p in
      if accept p Comma then e :: read_exprs () else [ e ]
  in
  let exprs = read_exprs () in
  expect p Rparen;
  Affine_expr.Map.make ~num_dims ~num_syms:!num_syms exprs

and parse_affine_expr p : Affine_expr.t =
  let lhs = parse_affine_term p in
  match p.tok with
  | Plus ->
    advance p;
    Affine_expr.add lhs (parse_affine_expr p)
  | Minus ->
    advance p;
    Affine_expr.sub lhs (parse_affine_expr p)
  | _ -> lhs

and parse_affine_term p =
  let lhs = parse_affine_factor p in
  let rec go lhs =
    match p.tok with
    | Star ->
      advance p;
      go (Affine_expr.mul lhs (parse_affine_factor p))
    | Ident "mod" ->
      advance p;
      go (Affine_expr.modulo lhs (parse_affine_factor p))
    | Ident "floordiv" ->
      advance p;
      go (Affine_expr.floordiv lhs (parse_affine_factor p))
    | Ident "ceildiv" ->
      advance p;
      go (Affine_expr.ceildiv lhs (parse_affine_factor p))
    | _ -> lhs
  in
  go lhs

and parse_affine_factor p =
  match p.tok with
  | Int_lit i -> advance p; Affine_expr.Const i
  | Minus ->
    advance p;
    Affine_expr.neg (parse_affine_factor p)
  | Ident s when String.length s > 1 && s.[0] = 'd'
                 && String.for_all is_digit (String.sub s 1 (String.length s - 1)) ->
    advance p;
    Affine_expr.Dim (int_of_string (String.sub s 1 (String.length s - 1)))
  | Ident s when String.length s > 1 && s.[0] = 's'
                 && String.for_all is_digit (String.sub s 1 (String.length s - 1)) ->
    advance p;
    Affine_expr.Sym (int_of_string (String.sub s 1 (String.length s - 1)))
  | Lparen ->
    advance p;
    let e = parse_affine_expr p in
    expect p Rparen;
    e
  | t -> error p.lx (Printf.sprintf "expected affine factor, found %s" (token_to_string t))

(* ------------------------------------------------------------------ *)
(* Locations                                                           *)
(* ------------------------------------------------------------------ *)

(* The inner expression of a [loc(...)] attachment. Raw constructors are
   built deliberately (no canonicalization): the parser reproduces exactly
   what the text says, so print -> parse -> print is the identity. *)
let rec parse_loc_expr p : Loc.t =
  match p.tok with
  | Ident "unknown" -> advance p; Loc.Unknown
  | Ident "callsite" ->
    advance p;
    expect p Lparen;
    let callee = parse_loc_expr p in
    (match p.tok with
    | Ident "at" -> advance p
    | t ->
      error p.lx
        (Printf.sprintf "expected 'at' in callsite location, found %s"
           (token_to_string t)));
    let caller = parse_loc_expr p in
    expect p Rparen;
    Loc.CallSite { callee; caller }
  | Ident "fused" ->
    advance p;
    expect p Lbracket;
    let rec elems () =
      if p.tok = Rbracket then []
      else
        let l = parse_loc_expr p in
        if accept p Comma then l :: elems () else [ l ]
    in
    let ls = elems () in
    expect p Rbracket;
    Loc.Fused ls
  | String_lit s -> (
    advance p;
    match p.tok with
    | Colon ->
      advance p;
      let line =
        match p.tok with
        | Int_lit i -> advance p; i
        | t ->
          error p.lx
            (Printf.sprintf "expected line number in location, found %s"
               (token_to_string t))
      in
      expect p Colon;
      let col =
        match p.tok with
        | Int_lit i -> advance p; i
        | t ->
          error p.lx
            (Printf.sprintf "expected column number in location, found %s"
               (token_to_string t))
      in
      Loc.File { file = s; line; col }
    | Lparen ->
      advance p;
      let child = parse_loc_expr p in
      expect p Rparen;
      Loc.Name (s, child)
    | _ -> Loc.Name (s, Loc.Unknown))
  | t ->
    error p.lx (Printf.sprintf "expected location, found %s" (token_to_string t))

(* ------------------------------------------------------------------ *)
(* Operations                                                          *)
(* ------------------------------------------------------------------ *)

let lookup_value p name =
  match Hashtbl.find_opt p.values name with
  | Some v -> v
  | None -> error p.lx (Printf.sprintf "use of undefined value %%%s" name)

(* Resolve a ^label used as a successor in the innermost region, creating
   a placeholder block on forward references. *)
let successor_block p name =
  match p.scopes with
  | [] ->
    error p.lx
      (Printf.sprintf "successor ^%s used outside of any region" name)
  | scope :: _ -> (
    match Hashtbl.find_opt scope.sc_blocks name with
    | Some b -> b
    | None ->
      let b = Core.create_block () in
      Hashtbl.replace scope.sc_blocks name b;
      scope.sc_referenced <- name :: scope.sc_referenced;
      b)

let rec parse_op p : Core.op =
  (* Textual position of the op (its first token) — the default location
     when no explicit loc(...) trails the op. *)
  let start_line = p.tok_line and start_col = p.tok_col in
  (* results *)
  let result_names =
    match p.tok with
    | Value_ref _ ->
      let rec names () =
        match p.tok with
        | Value_ref n ->
          advance p;
          if accept p Comma then n :: names () else [ n ]
        | t -> error p.lx (Printf.sprintf "expected value ref, found %s" (token_to_string t))
      in
      let ns = names () in
      expect p Equal;
      ns
    | _ -> []
  in
  let name = expect_ident p in
  expect p Lparen;
  let rec operand_names () =
    match p.tok with
    | Value_ref n ->
      advance p;
      if accept p Comma then n :: operand_names () else [ n ]
    | _ -> []
  in
  let op_names = operand_names () in
  expect p Rparen;
  let operands = List.map (lookup_value p) op_names in
  (* successors: [^bb1, ^bb2] *)
  let successors =
    if accept p Lbracket then begin
      let rec labels () =
        match p.tok with
        | Block_ref n ->
          advance p;
          let b = successor_block p n in
          if accept p Comma then b :: labels () else [ b ]
        | t ->
          error p.lx
            (Printf.sprintf "expected block label in successor list, found %s"
               (token_to_string t))
      in
      let bs = labels () in
      expect p Rbracket;
      bs
    end
    else []
  in
  (* regions *)
  let regions =
    if p.tok = Lparen then begin
      advance p;
      let rec rs () =
        let r = parse_region p in
        if accept p Comma then r :: rs () else [ r ]
      in
      let regions = rs () in
      expect p Rparen;
      regions
    end
    else []
  in
  (* attributes *)
  let attrs =
    if accept p Lbrace then begin
      let rec kvs () =
        if p.tok = Rbrace then []
        else begin
          let k = expect_ident p in
          expect p Equal;
          let v = parse_attr p in
          if accept p Comma then (k, v) :: kvs () else [ (k, v) ]
        end
      in
      let attrs = kvs () in
      expect p Rbrace;
      attrs
    end
    else []
  in
  (* type signature *)
  let result_types =
    if accept p Colon then begin
      expect p Lparen;
      let _operand_tys = parse_type_list_until p Rparen in
      expect p Rparen;
      expect p Arrow;
      expect p Lparen;
      let rts = parse_type_list_until p Rparen in
      expect p Rparen;
      rts
    end
    else []
  in
  if List.length result_types <> List.length result_names then
    error p.lx
      (Printf.sprintf "op %s: %d result names but %d result types" name
         (List.length result_names) (List.length result_types));
  (* Trailing location attachment: an explicit loc(...) wins over the
     recorded textual position ('loc' is reserved as an op name). *)
  let loc =
    match p.tok with
    | Ident "loc" ->
      advance p;
      expect p Lparen;
      let l = parse_loc_expr p in
      expect p Rparen;
      l
    | _ -> Loc.File { file = p.file; line = start_line; col = start_col }
  in
  let op =
    Core.create_op name ~operands ~result_types ~attrs ~regions ~successors ~loc
  in
  List.iteri
    (fun i n -> Hashtbl.replace p.values n (Core.result op i))
    result_names;
  op

and parse_region p : Core.region =
  expect p Lbrace;
  let scope =
    { sc_blocks = Hashtbl.create 8; sc_defined = []; sc_referenced = [] }
  in
  p.scopes <- scope :: p.scopes;
  (* Optional block headers; a region with no header is a single block with
     no arguments. *)
  let parse_block_header () =
    match p.tok with
    | Block_ref name ->
      advance p;
      expect p Lparen;
      let rec args () =
        match p.tok with
        | Value_ref n ->
          advance p;
          expect p Colon;
          let ty = parse_type p in
          if accept p Comma then (n, ty) :: args () else [ (n, ty) ]
        | _ -> []
      in
      let args = args () in
      expect p Rparen;
      expect p Colon;
      Some (name, args)
    | _ -> None
  in
  let parse_block_body () =
    let rec ops () =
      match p.tok with
      | Rbrace | Block_ref _ -> []
      | _ ->
        let op = parse_op p in
        op :: ops ()
    in
    ops ()
  in
  let blocks = ref [] in
  let rec go first =
    match (p.tok, first) with
    | Rbrace, _ -> ()
    | _ ->
      let header = parse_block_header () in
      let block =
        match header with
        | Some (name, args) ->
          if List.mem name scope.sc_defined then
            error p.lx (Printf.sprintf "duplicate block label ^%s" name);
          scope.sc_defined <- name :: scope.sc_defined;
          (* A forward successor reference may already have created a
             placeholder for this label; attach the arguments to it. *)
          let b =
            match Hashtbl.find_opt scope.sc_blocks name with
            | Some b -> b
            | None ->
              let b = Core.create_block () in
              Hashtbl.replace scope.sc_blocks name b;
              b
          in
          List.iter
            (fun (n, ty) ->
              let v = Core.add_block_arg b ty in
              Hashtbl.replace p.values n v)
            args;
          b
        | None ->
          if not first then error p.lx "expected block header";
          Core.create_block ()
      in
      let body = parse_block_body () in
      List.iter (Core.append_op block) body;
      blocks := block :: !blocks;
      go false
  in
  go true;
  expect p Rbrace;
  List.iter
    (fun n ->
      if not (List.mem n scope.sc_defined) then
        error p.lx
          (Printf.sprintf "successor ^%s is never defined in this region" n))
    scope.sc_referenced;
  p.scopes <- List.tl p.scopes;
  let blocks = match List.rev !blocks with [] -> [ Core.create_block () ] | bs -> bs in
  Core.create_region ~blocks ()

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let make_parser ?(file = "-") src =
  let lx = { src; pos = 0; line = 1; bol = 0; tok_line = 1; tok_col = 1 } in
  let p =
    {
      lx;
      file;
      tok = Eof;
      tok_line = 1;
      tok_col = 1;
      values = Hashtbl.create 64;
      scopes = [];
    }
  in
  advance p;
  p

let parse_string ?file src =
  let p = make_parser ?file src in
  let op = parse_op p in
  if p.tok <> Eof then
    error p.lx (Printf.sprintf "trailing input: %s" (token_to_string p.tok));
  op

let parse_module ?file src =
  let op = parse_string ?file src in
  if not (Core.is_module op) then
    raise (Parse_error "expected a builtin.module at top level");
  op

(** Parse a standalone location expression (the inner form of [loc(...)]),
    e.g. ["\"f.cpp\":3:1"] or ["callsite(\"a\" at \"b\")"] — used by the
    remarks JSON reader. *)
let parse_loc src =
  let p = make_parser src in
  let l = parse_loc_expr p in
  if p.tok <> Eof then
    error p.lx
      (Printf.sprintf "trailing input after location: %s"
         (token_to_string p.tok));
  l
