(** Pass instrumentation, mirrored on MLIR's PassInstrumentation:
    [before_pass]/[after_pass] hooks fired around every pass execution by
    {!Pass.run_pipeline}, plus the built-in instrumentations the
    reproduction's workflow depends on — hierarchical timing
    ([-mlir-timing]), IR-change detection (no-op pass runs flagged via
    module fingerprints) and before/after IR snapshots. *)

type t = {
  i_name : string;
  before_pass : pass_name:string -> Core.op -> unit;
  after_pass : pass_name:string -> Core.op -> unit;
}

val make :
  ?before_pass:(pass_name:string -> Core.op -> unit) ->
  ?after_pass:(pass_name:string -> Core.op -> unit) ->
  string ->
  t

(** Fire every [before_pass] hook, in registration order. *)
val run_before : t list -> pass_name:string -> Core.op -> unit

(** Fire every [after_pass] hook, in reverse registration order (so
    paired instrumentations nest like MLIR's). *)
val run_after : t list -> pass_name:string -> Core.op -> unit

(** {1 Hierarchical timing} *)

type timing_node = {
  t_name : string;
  mutable t_wall : float;  (** seconds, accumulated over executions *)
  mutable t_count : int;  (** executions merged into this line *)
  mutable t_children : timing_node list;
}

type timer

val timer : unit -> timer

(** The timing instrumentation: per-pass wall time, merged by pass name
    like mlir's TimingManager. *)
val timing : timer -> t

(** Snapshot of the tree; the root's wall time is the elapsed time since
    [timer] was created. *)
val timing_report : timer -> timing_node

(** Print the [-mlir-timing]-style report (total header, per-pass wall
    time with percentages, Rest and Total lines). *)
val pp_timing : Format.formatter -> timing_node -> unit

(** {1 IR-change detection} *)

(** Structural fingerprint of a module (digest of its canonical text). *)
val fingerprint : Core.op -> Digest.t

type change_log

val change_log : unit -> change_log

(** The change-detection instrumentation: fingerprints the module before
    and after each pass. *)
val ir_change : change_log -> t

(** One entry per pass execution, in pipeline order: did it change the IR? *)
val changes : change_log -> (string * bool) list

(** Pass executions that left the module bit-identical. *)
val noop_passes : change_log -> string list

val pp_changes : Format.formatter -> change_log -> unit

(** {1 Location coverage} *)

type loc_coverage_entry = {
  lc_pass : string;
  lc_before_known : int;  (** ops with a known location before the pass *)
  lc_before_total : int;
  lc_after_known : int;
  lc_after_total : int;
}

(** Did the pass leave more unknown-location ops behind than it found
    (i.e. create or rewrite ops without propagating locations)? *)
val loc_coverage_lost : loc_coverage_entry -> bool

type loc_coverage_log

val loc_coverage_log : unit -> loc_coverage_log

(** The location-coverage instrumentation: counts known-location ops
    before and after every pass, so location loss is observable. *)
val loc_coverage : loc_coverage_log -> t

val loc_coverage_entries : loc_coverage_log -> loc_coverage_entry list

(** [(known, total)] ops in a module. *)
val count_locs : Core.op -> int * int

val pp_loc_coverage : Format.formatter -> loc_coverage_log -> unit

(** {1 Verification after every pass} *)

(** [verify_after ()] runs {!Verifier.verify} on the module after every
    pass, handing any diagnostics to [sink] with the offending pass's
    name (default sink: stderr). Backs [--verify-each] and the fuzzing
    harness's verifier oracle. *)
val verify_after :
  ?sink:(pass_name:string -> Verifier.diag list -> unit) -> unit -> t

(** {1 IR snapshots} *)

(** [dump ~filter ()] prints the module around every pass whose name
    matches [filter] (a literal pass name, or ["all"]). [sink] receives
    the banner and module text (default: stderr). *)
val dump :
  ?sink:(string -> unit) ->
  ?before:bool ->
  ?after:bool ->
  filter:string ->
  unit ->
  t
