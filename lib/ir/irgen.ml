(* Seeded random IR generator for the differential-testing harness.

   Generates modules that exercise the full surface of the textual
   format: every {!Attr.t} constructor (including nan/infinity floats
   and strings full of non-printable bytes), nested regions, dialect
   op names, and multi-block CFG bodies with forward and backward
   successor references. The output is structurally printable and
   re-parseable — def-before-use in print order, successors only on
   block-terminating ops — but makes no dialect-semantics promises:
   it feeds the print→parse→print fixpoint oracle, not the simulator. *)

type config = {
  max_region_depth : int;  (** nesting limit for region-bearing ops *)
  max_ops_per_block : int;
  max_blocks_per_cfg : int;  (** blocks in a generated CFG region *)
  max_funcs : int;  (** top-level ops per module *)
}

let default_config =
  { max_region_depth = 3; max_ops_per_block = 4; max_blocks_per_cfg = 4;
    max_funcs = 3 }

type t = {
  rng : Random.State.t;
  config : config;
  mutable n_syms : int;  (** fresh-name counter for symbols/attr keys *)
}

let create ?(config = default_config) seed =
  { rng = Random.State.make [| 0x1e9e; seed |]; config; n_syms = 0 }

let int g n = Random.State.int g.rng n
let pick g xs = List.nth xs (int g (List.length xs))
let pick_arr g xs = xs.(int g (Array.length xs))

let fresh_sym g prefix =
  g.n_syms <- g.n_syms + 1;
  Printf.sprintf "%s%d" prefix g.n_syms

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

let scalar_types =
  [ Types.Index; Types.F32; Types.F64; Types.Integer 1; Types.Integer 8;
    Types.Integer 16; Types.Integer 32; Types.Integer 64; Types.None_type ]

let gen_scalar_type g = pick g scalar_types

let gen_memref_type g =
  let rank = int g 4 in
  let shape =
    List.init rank (fun _ -> if int g 4 = 0 then None else Some (1 + int g 64))
  in
  let space = pick g [ Types.Global; Types.Local; Types.Private ] in
  Types.Memref { shape; element = gen_scalar_type g; space }

let gen_type g =
  match int g 10 with
  | 0 | 1 -> gen_memref_type g
  | 2 ->
    let args = List.init (int g 3) (fun _ -> gen_scalar_type g) in
    let results = List.init (int g 3) (fun _ -> gen_scalar_type g) in
    Types.Function (args, results)
  | _ -> gen_scalar_type g

(* ------------------------------------------------------------------ *)
(* Attributes                                                          *)
(* ------------------------------------------------------------------ *)

let special_floats =
  [| 0.0; -0.0; 1.0; -1.0; 0.5; 1.2; -3.0; Float.nan; Float.infinity;
     Float.neg_infinity; Float.max_float; Float.min_float; epsilon_float;
     4.9e-324 (* smallest subnormal *); 0.1; 1.0000000000000002;
     3.14159265358979312; 1e300; -1e-300 |]

(* 64 random bits out of three 30-bit draws (Random.State.bits). *)
let bits64 g =
  let open Int64 in
  logxor
    (shift_left (of_int (Random.State.bits g.rng)) 34)
    (logxor
       (shift_left (of_int (Random.State.bits g.rng)) 17)
       (of_int (Random.State.bits g.rng)))

let gen_float g =
  match int g 4 with
  | 0 -> pick_arr g special_floats
  | 1 -> float_of_int (int g 2001 - 1000)
  | 2 -> Random.State.float g.rng 2e6 -. 1e6
  | _ -> Int64.float_of_bits (bits64 g)

let tricky_chars = [ '"'; '\\'; '\n'; '\t'; '?'; '%'; '^'; '{'; '}'; '\000'; '\r' ]

let gen_string g =
  String.init (int g 12) (fun _ ->
      match int g 6 with
      | 0 | 1 | 2 -> Char.chr (32 + int g 95) (* printable ASCII *)
      | 3 -> pick g tricky_chars
      | _ -> Char.chr (int g 256))

(* Built with the smart constructors so the stored tree is already in the
   canonical form {!Affine_expr.Map.to_string} and the parser agree on. *)
let affine_maps =
  let open Affine_expr in
  [ Map.identity 1; Map.identity 2;
    Map.make ~num_dims:2 ~num_syms:0 [ add (dim 0) (dim 1) ];
    Map.make ~num_dims:1 ~num_syms:1 [ add (mul (dim 0) (const 4)) (sym 0) ];
    Map.make ~num_dims:2 ~num_syms:0
      [ modulo (dim 0) (const 8); floordiv (dim 1) (const 2) ];
    Map.make ~num_dims:1 ~num_syms:0 [ sub (dim 0) (const 1) ];
    Map.constant_map [ 0; 3 ] ]

let rec gen_attr g ~depth =
  match int g (if depth > 0 then 11 else 10) with
  | 0 -> Attr.Unit
  | 1 -> Attr.Bool (Random.State.bool g.rng)
  | 2 ->
    Attr.Int
      (match int g 4 with
      | 0 -> int g 2001 - 1000
      | 1 -> max_int
      | 2 -> min_int
      | _ -> Random.State.bits g.rng)
  | 3 -> Attr.Float (gen_float g)
  | 4 -> Attr.String (gen_string g)
  | 5 -> Attr.Type (gen_type g)
  | 6 -> Attr.Symbol (fresh_sym g "sym")
  | 7 -> Attr.Dense_int (Array.init (int g 5) (fun _ -> int g 201 - 100))
  | 8 -> Attr.Dense_float (Array.init (int g 5) (fun _ -> gen_float g))
  | 9 -> Attr.Affine_map (pick g affine_maps)
  | _ -> Attr.Array (List.init (int g 4) (fun _ -> gen_attr g ~depth:(depth - 1)))

(* Attributes shaped like the analysis-printer annotations (dotted keys,
   the same value constructs), so the fuzzer's round-trip oracle covers
   annotated modules. *)
let gen_annotation_attr g =
  match int g 8 with
  | 0 -> ("sycl.alias_group", Attr.Int (int g 8))
  | 1 ->
    ( "sycl.uniform",
      Attr.Array
        (List.init
           (1 + int g 3)
           (fun _ ->
             Attr.String (pick g [ "uniform"; "unknown"; "non-uniform" ]))) )
  | 2 ->
    ( "sycl.reaching_mods",
      Attr.Dense_int (Array.init (int g 5) (fun _ -> int g 32)) )
  | 3 ->
    ( "sycl.access_matrix",
      Attr.Array
        (List.init
           (1 + int g 2)
           (fun _ -> Attr.Dense_int (Array.init (1 + int g 3) (fun _ -> int g 5 - 2)))) )
  | 4 ->
    ( "sycl.coalescing",
      Attr.String
        (pick g [ "linear"; "reverse-linear"; "thread-invariant"; "non-coalesced" ]) )
  | 5 -> ("sycl.cycles", Attr.Int (int g 100_000))
  | 6 -> ("sycl.mem_cycles", Attr.Int (int g 50_000))
  | _ -> ("sycl.temporal_reuse", Attr.Bool (Random.State.bool g.rng))

let gen_attrs g =
  let plain =
    List.init (int g 4) (fun i -> (Printf.sprintf "a%d" i, gen_attr g ~depth:2))
  in
  if int g 4 = 0 then plain @ [ gen_annotation_attr g ] else plain

(* ------------------------------------------------------------------ *)
(* Locations                                                           *)
(* ------------------------------------------------------------------ *)

(* Random source locations covering all five constructors, nested. Built
   with the {!Loc} smart constructors so the tree is already canonical
   (fused lists flattened/deduplicated, unknown callsite sides collapsed)
   — print -> parse is then the textual identity the debuginfo fixpoint
   oracle demands. *)
let rec gen_loc g ~depth =
  match int g (if depth > 0 then 8 else 4) with
  | 0 -> Loc.unknown
  | 1 | 2 ->
    Loc.file
      ~file:(match int g 3 with
            | 0 -> "mm.cpp"
            | 1 -> "kernel.sycl.cpp"
            | _ -> gen_string g)
      ~line:(1 + int g 500) ~col:(1 + int g 120)
  | 3 -> Loc.name (gen_string g)
  | 4 | 5 -> Loc.name ~child:(gen_loc g ~depth:(depth - 1)) (fresh_sym g "loc")
  | 6 ->
    Loc.callsite
      ~callee:(gen_loc g ~depth:(depth - 1))
      ~caller:(gen_loc g ~depth:(depth - 1))
  | _ ->
    Loc.fused (List.init (int g 4) (fun _ -> gen_loc g ~depth:(depth - 1)))

(* ------------------------------------------------------------------ *)
(* Operations                                                          *)
(* ------------------------------------------------------------------ *)

(* Plain strings, not dialect-library dependencies: the generator lives
   below the dialect layer and only exercises the textual format. *)
let leaf_names =
  [| "arith.addf"; "arith.mulf"; "arith.addi"; "arith.select";
     "arith.constant"; "memref.load"; "memref.store"; "memref.alloc";
     "affine.apply"; "func.call"; "gpu.barrier"; "gpu.thread_id";
     "sycl.id.get"; "sycl.range.get"; "test.op"; "test.misc$special" |]

let region_names = [| "scf.execute_region"; "test.wrap"; "test.nested" |]

(* Values usable as operands: everything already printed at this point.
   Extended left-to-right as generation proceeds. *)
type env = Core.value list

let gen_operands g (env : env) =
  if env = [] then []
  else List.init (int g 3) (fun _ -> pick g env)

let gen_leaf g env =
  Core.create_op (pick_arr g leaf_names) ~operands:(gen_operands g env)
    ~result_types:(List.init (int g 3) (fun _ -> gen_type g))
    ~attrs:(if int g 2 = 0 then gen_attrs g else [])
    ~loc:(gen_loc g ~depth:2)

let rec gen_op g ~depth (env : env) : Core.op =
  if depth > 0 && int g 4 = 0 then
    let regions =
      List.init (1 + int g 2) (fun _ -> gen_region g ~depth:(depth - 1) env)
    in
    Core.create_op (pick_arr g region_names) ~operands:(gen_operands g env)
      ~result_types:(List.init (int g 2) (fun _ -> gen_type g))
      ~attrs:(if int g 2 = 0 then gen_attrs g else [])
      ~regions ~loc:(gen_loc g ~depth:2)
  else gen_leaf g env

(* A straight-line block body; returns the ops and the extended env. *)
and gen_body g ~depth (env : env) =
  let n = 1 + int g g.config.max_ops_per_block in
  let rec go acc env i =
    if i = n then (List.rev acc, env)
    else
      let op = gen_op g ~depth env in
      go (op :: acc) (env @ Core.results op) (i + 1)
  in
  go [] env 0

and gen_region g ~depth (env : env) : Core.region =
  if depth > 0 && int g 3 = 0 then gen_cfg_region g ~depth env
  else begin
    let args = List.init (int g 3) (fun _ -> gen_type g) in
    let block = Core.create_block ~args () in
    let ops, _ = gen_body g ~depth (env @ Core.block_args block) in
    List.iter (Core.append_op block) ops;
    Core.create_region ~blocks:[ block ] ()
  end

(* Multi-block CFG region: every block ends in a cf terminator whose
   successors point anywhere in the region (forward and backward edges),
   except the last block which ends in a plain leaf. Bodies only use
   block-local values plus the enclosing env, so print order equals
   def order. *)
and gen_cfg_region g ~depth (env : env) : Core.region =
  let n = 2 + int g (g.config.max_blocks_per_cfg - 1) in
  let blocks =
    List.init n (fun _ ->
        Core.create_block ~args:(List.init (int g 2) (fun _ -> gen_type g)) ())
  in
  List.iteri
    (fun i b ->
      let ops, env' = gen_body g ~depth:0 (env @ Core.block_args b) in
      List.iter (Core.append_op b) ops;
      let term =
        if i = n - 1 then Core.create_op "test.return" ~operands:[] ~result_types:[]
        else if Random.State.bool g.rng then
          Core.create_op "cf.br" ~operands:[] ~result_types:[]
            ~successors:[ pick g blocks ]
        else begin
          let cond =
            Core.create_op "arith.constant" ~operands:[]
              ~result_types:[ Types.Integer 1 ]
              ~attrs:[ ("value", Attr.Bool (Random.State.bool g.rng)) ]
          in
          Core.append_op b cond;
          Core.create_op "cf.cond_br"
            ~operands:(Core.result cond 0 :: gen_operands g env')
            ~result_types:[]
            ~successors:[ pick g blocks; pick g blocks ]
        end
      in
      Core.append_op b term)
    blocks;
  Core.create_region ~blocks ()

(* ------------------------------------------------------------------ *)
(* Modules                                                             *)
(* ------------------------------------------------------------------ *)

let gen_func g =
  let arg_tys = List.init (int g 3) (fun _ -> gen_type g) in
  let block = Core.create_block ~args:arg_tys () in
  let ops, _ =
    gen_body g ~depth:g.config.max_region_depth (Core.block_args block)
  in
  List.iter (Core.append_op block) ops;
  Core.append_op block
    (Core.create_op "func.return" ~operands:[] ~result_types:[]);
  let region = Core.create_region ~blocks:[ block ] () in
  Core.create_op "func.func" ~operands:[] ~result_types:[]
    ~attrs:
      [ ("sym_name", Attr.String (fresh_sym g "fn"));
        ("function_type", Attr.Type (Types.Function (arg_tys, []))) ]
    ~regions:[ region ] ~loc:(gen_loc g ~depth:1)

let gen_global g =
  Core.create_op "test.global" ~operands:[] ~result_types:[]
    ~attrs:(("sym_name", Attr.Symbol (fresh_sym g "g")) :: gen_attrs g)

(** A fresh random [builtin.module]. *)
let gen_module g : Core.op =
  let m = Core.create_module () in
  let body = Core.entry_block m.Core.regions.(0) in
  for _ = 1 to 1 + int g g.config.max_funcs do
    Core.append_op body
      (if int g 4 = 0 then gen_global g else gen_func g)
  done;
  m
