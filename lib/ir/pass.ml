(* Pass management: named passes over a module op, pipelines, statistics,
   and optional inter-pass verification — a small mirror of MLIR's
   PassManager. *)

module Stats = struct
  type t = (string, int) Hashtbl.t

  let create () : t = Hashtbl.create 16

  let bump ?(by = 1) (t : t) key =
    Hashtbl.replace t key (by + Option.value ~default:0 (Hashtbl.find_opt t key))

  let get (t : t) key = Option.value ~default:0 (Hashtbl.find_opt t key)

  (* Deterministic by construction: order by key with an explicit string
     comparison (never polymorphic compare over the pairs). *)
  let to_list (t : t) =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let pp fmt (t : t) =
    List.iter
      (fun (k, v) -> Format.fprintf fmt "  %-40s %d@." k v)
      (to_list t)
end

type t = {
  pass_name : string;
  run : Core.op -> Stats.t -> unit;
}

let make pass_name run = { pass_name; run }

(** A pass that runs [run_on_func] over every func.func in the module. *)
let on_functions pass_name run_on_func =
  make pass_name (fun m stats ->
      List.iter (fun f -> run_on_func f stats) (Core.funcs m))

exception
  Pass_failed of {
    pass : string;
    diagnostics : Verifier.diag list;
  }

type pipeline_result = {
  per_pass_stats : (string * Stats.t) list;
  per_pass_time : (string * float) list;
}

(** Run [passes] over module [m]. When [verify_each] is set (default), the
    verifier runs after every pass and a failure is attributed to the pass
    that just ran. [instrumentations] fire around every pass execution
    (timing, IR-change detection, dumps — see {!Instrument}).
    [remarks_sink] scopes an optimization-remark sink to exactly this
    pipeline ({!Remarks.with_sink}), so nested or concurrent pipelines
    each keep their own stream. *)
let run_pipeline ?(verify_each = true) ?(instrumentations = []) ?remarks_sink
    passes m =
  let go () =
    let per_pass_stats = ref [] in
    let per_pass_time = ref [] in
    List.iter
      (fun pass ->
        let stats = Stats.create () in
        Instrument.run_before instrumentations ~pass_name:pass.pass_name m;
        let t0 = Unix.gettimeofday () in
        pass.run m stats;
        let dt = Unix.gettimeofday () -. t0 in
        Instrument.run_after instrumentations ~pass_name:pass.pass_name m;
        per_pass_stats := (pass.pass_name, stats) :: !per_pass_stats;
        per_pass_time := (pass.pass_name, dt) :: !per_pass_time;
        if verify_each then
          match Verifier.verify m with
          | Ok () -> ()
          | Error diagnostics ->
            raise (Pass_failed { pass = pass.pass_name; diagnostics }))
      passes;
    {
      per_pass_stats = List.rev !per_pass_stats;
      per_pass_time = List.rev !per_pass_time;
    }
  in
  match remarks_sink with
  | None -> go ()
  | Some sink -> Remarks.with_sink sink go

(** Merge the stats of every pass occurrence into one table keyed by
    "pass/stat". *)
let merged_stats (r : pipeline_result) =
  let out = Stats.create () in
  List.iter
    (fun (pass, stats) ->
      List.iter
        (fun (k, v) -> Stats.bump ~by:v out (pass ^ "/" ^ k))
        (Stats.to_list stats))
    r.per_pass_stats;
  out
