(** The one JSON reader/writer shared by every emitter in the repo
    (optimization remarks, simulator traces, fuzz reports, benchmark
    reports), with a single correct string escaper — OCaml's [%S] is not
    valid JSON for control or non-ASCII bytes. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Escape a byte string into valid JSON string contents (no quotes).
    Control and non-ASCII bytes become [\u00XX], so the output is
    pure-ASCII valid JSON for any input bytes. *)
val escape_string : string -> string

(** Deterministic serialization. Default is pretty-printed (2-space
    indent, trailing newline NOT included); [compact] is single-line. *)
val to_string : ?compact:bool -> t -> string

(** {2 Accessors}, all returning [None] on kind mismatch. *)

val member : string -> t -> t option
val as_string : t -> string option
val as_int : t -> int option

(** Ints widen to float. *)
val as_float : t -> float option

val as_bool : t -> bool option
val as_list : t -> t list option
val as_obj : t -> (string * t) list option

exception Parse_error of string

(** Parse standard JSON (objects, arrays, strings, numbers, booleans,
    null). Raises {!Parse_error}. *)
val parse : string -> t
