(* A small JSON library shared by every emitter in the repo (optimization
   remarks, simulator traces, fuzz reports, benchmark reports) so there is
   exactly one string escaper to get right. OCaml's [%S] is close to JSON
   but not JSON: control bytes print as [\026]-style decimal escapes and
   non-ASCII bytes as [\xHH], neither of which a JSON parser accepts.

   Values are a plain variant; [to_string] produces deterministic output
   (object fields in the order given). The reader accepts standard JSON
   (objects, arrays, strings, numbers, booleans, null) — a superset of
   what the writers emit, so reports survive hand edits. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Escaping and printing                                               *)
(* ------------------------------------------------------------------ *)

(** Escape a byte string into valid JSON string contents (no quotes).
    Control bytes and non-ASCII bytes become [\u00XX] (the byte's
    Latin-1 interpretation), so the output is pure-ASCII valid JSON no
    matter what bytes come in. *)
let escape_string s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | '\b' -> Buffer.add_string b "\\b"
      | '\x0c' -> Buffer.add_string b "\\f"
      | c when c >= ' ' && c < '\x7f' -> Buffer.add_char b c
      | c -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c)))
    s;
  Buffer.contents b

(* Floats must re-read as numbers: JSON has no nan/infinity, so those
   serialize as null; finite floats keep a '.'/'e' so they stay floats. *)
let float_to_string f =
  match Float.classify_float f with
  | FP_nan | FP_infinite -> "null"
  | _ ->
    let s = Printf.sprintf "%.17g" f in
    let s =
      let shorter = Printf.sprintf "%.12g" f in
      if float_of_string shorter = f then shorter else s
    in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"

let rec write ?(indent = 0) buf (v : t) =
  let pad n = String.make (2 * n) ' ' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_to_string f)
  | String s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape_string s);
    Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List xs ->
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (pad (indent + 1));
        write ~indent:(indent + 1) buf x)
      xs;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (pad indent);
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj kvs ->
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, x) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (pad (indent + 1));
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape_string k);
        Buffer.add_string buf "\": ";
        write ~indent:(indent + 1) buf x)
      kvs;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (pad indent);
    Buffer.add_char buf '}'

let to_string ?(compact = false) (v : t) =
  let buf = Buffer.create 1024 in
  if compact then begin
    let rec go v =
      match v with
      | Null -> Buffer.add_string buf "null"
      | Bool b -> Buffer.add_string buf (if b then "true" else "false")
      | Int i -> Buffer.add_string buf (string_of_int i)
      | Float f -> Buffer.add_string buf (float_to_string f)
      | String s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape_string s);
        Buffer.add_char buf '"'
      | List xs ->
        Buffer.add_char buf '[';
        List.iteri (fun i x -> if i > 0 then Buffer.add_char buf ','; go x) xs;
        Buffer.add_char buf ']'
      | Obj kvs ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape_string k);
            Buffer.add_string buf "\":";
            go x)
          kvs;
        Buffer.add_char buf '}'
    in
    go v
  end
  else write buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None
let as_string = function String s -> Some s | _ -> None
let as_int = function Int i -> Some i | _ -> None

let as_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let as_bool = function Bool b -> Some b | _ -> None
let as_list = function List xs -> Some xs | _ -> None
let as_obj = function Obj kvs -> Some kvs | _ -> None

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let error msg =
    raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos))
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    if peek () = Some c then incr pos
    else error (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else error (Printf.sprintf "expected %s" word)
  in
  let parse_string_raw () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          incr pos;
          (if !pos >= n then error "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char b '"'
             | '\\' -> Buffer.add_char b '\\'
             | '/' -> Buffer.add_char b '/'
             | 'n' -> Buffer.add_char b '\n'
             | 't' -> Buffer.add_char b '\t'
             | 'r' -> Buffer.add_char b '\r'
             | 'b' -> Buffer.add_char b '\b'
             | 'f' -> Buffer.add_char b '\x0c'
             | 'u' ->
               if !pos + 4 >= n then error "bad \\u escape";
               let code =
                 match int_of_string_opt ("0x" ^ String.sub s (!pos + 1) 4) with
                 | Some c -> c
                 | None -> error "bad \\u escape"
               in
               (* Code points <= 0xff decode to the byte itself (matching
                  the writer, which only emits \u00XX); anything larger
                  is UTF-8-encoded. *)
               if code <= 0xff then Buffer.add_char b (Char.chr code)
               else if code <= 0x7ff then begin
                 Buffer.add_char b (Char.chr (0xc0 lor (code lsr 6)));
                 Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
               end
               else begin
                 Buffer.add_char b (Char.chr (0xe0 lor (code lsr 12)));
                 Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
                 Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
               end;
               pos := !pos + 4
             | c -> error (Printf.sprintf "bad escape '\\%c'" c));
          incr pos;
          go ()
        | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      incr pos
    done;
    let text = String.sub s start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> error (Printf.sprintf "bad number %S" text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> String (parse_string_raw ())
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let rec members acc =
          let key = parse_string_raw () in
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            skip_ws ();
            members ((key, v) :: acc)
          | Some '}' ->
            incr pos;
            List.rev ((key, v) :: acc)
          | _ -> error "expected ',' or '}'"
        in
        Obj (members [])
      end
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        List []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            elements (v :: acc)
          | Some ']' ->
            incr pos;
            List.rev (v :: acc)
          | _ -> error "expected ',' or ']'"
        in
        List (elements [])
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> error (Printf.sprintf "unexpected character '%c'" c)
    | None -> error "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then error "trailing garbage";
  v
