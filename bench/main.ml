(* The benchmark harness: regenerates every figure and table of the
   paper's evaluation (Section VIII).

   Usage:
     dune exec bench/main.exe            — everything
     dune exec bench/main.exe -- fig2    — single-kernel speedups (Fig. 2)
     dune exec bench/main.exe -- fig3    — polybench speedups (Fig. 3)
     dune exec bench/main.exe -- stencil — stencil workloads (Section VIII text)
     dune exec bench/main.exe -- geomean — geo-mean summary vs paper numbers
     dune exec bench/main.exe -- ablation— per-optimization contribution table
     dune exec bench/main.exe -- passes  — Bechamel pass-time microbenchmarks
     dune exec bench/main.exe -- profile — compile timing tree + Chrome trace
                                           of a simulated GEMM run
     dune exec bench/main.exe -- fuzz [--seed N] [--iters N] [--json PATH]
                                         — differential fuzzing harness
     dune exec bench/main.exe -- report [--label L] [--out PATH]
                                         — schema-versioned metrics snapshot
                                           (BENCH_<label>.json)
     dune exec bench/main.exe -- compare OLD.json NEW.json [--tolerance F]
                                         — exit 1 on cycle/validity
                                           regressions or missing workloads

   Global flags (any subcommand):
     --sim-domains N     — run the device simulator's work-groups on N
                           worker domains (default: recommended count)
     --sim-check-races   — detect work-groups writing overlapping global
                           locations (exit 1 with a report)
     --cache-model M     — simulate a per-core data cache (flat|dm|assoc;
                           default flat = no cache, byte-identical output)

   Absolute paper numbers came from an Intel Data Center GPU Max 1100;
   ours come from the transaction-level simulator — only the shape of the
   comparison (who wins, roughly by how much, where crossovers fall) is
   expected to match. EXPERIMENTS.md records paper-vs-measured per row. *)

open Sycl_workloads
module Driver = Sycl_core.Driver

(* Global simulator flags, valid with every subcommand:
     --sim-domains N     worker domains for the device simulator
     --sim-check-races   cross-group write-overlap detection
   They are stripped from argv here and applied as the simulator's
   process-wide defaults, so each subcommand's own parser never sees
   them. *)
let filtered_args =
  let rec go acc = function
    | "--sim-domains" :: v :: rest ->
      (match int_of_string_opt v with
      | Some n when n >= 1 -> Sycl_sim.Interp.set_default_domains n
      | _ ->
        Printf.eprintf "bad --sim-domains %s (want an integer >= 1)\n" v;
        exit 2);
      go acc rest
    | "--sim-check-races" :: rest ->
      Sycl_sim.Interp.set_default_check_races true;
      go acc rest
    | "--cache-model" :: v :: rest ->
      (match Sycl_sim.Cost.model_of_string v with
      | Some m -> Sycl_sim.Interp.set_default_cache_model m
      | None ->
        Printf.eprintf "bad --cache-model %s (want flat|dm|assoc)\n" v;
        exit 2);
      go acc rest
    | x :: rest -> go (x :: acc) rest
    | [] -> List.rev acc
  in
  go [] (List.tl (Array.to_list Sys.argv))

let cmd = match filtered_args with c :: _ -> c | [] -> "all"
let subcommand_args () = match filtered_args with _ :: rest -> rest | [] -> []

let rows_cache : (string, Suite.row list) Hashtbl.t = Hashtbl.create 4

let rows key mk =
  match Hashtbl.find_opt rows_cache key with
  | Some r -> r
  | None ->
    let r = List.map Suite.run_row (mk ()) in
    Hashtbl.replace rows_cache key r;
    r

let fig2_rows () = rows "fig2" (fun () -> Suite.fig2 ())
let fig3_rows () = rows "fig3" (fun () -> Suite.fig3 ())
let stencil_rows () = rows "stencil" (fun () -> Suite.stencils ())

let check_validity name rs =
  if not (Suite.validity_ok rs) then
    Printf.printf "!! WARNING: some %s results failed validation\n" name

let run_fig2 () =
  let rs = fig2_rows () in
  Suite.print_figure ~title:"Fig. 2 — single-kernel benchmarks (speedup over DPC++)" rs;
  check_validity "fig2" rs

let run_fig3 () =
  let rs = fig3_rows () in
  Suite.print_figure ~title:"Fig. 3 — polybench benchmarks (speedup over DPC++)" rs;
  check_validity "fig3" rs

let run_stencil () =
  let rs = stencil_rows () in
  Suite.print_figure ~title:"Stencil workloads (Section VIII, oneAPI samples)" rs;
  check_validity "stencil" rs

let run_geomean () =
  let g rs = Common.geomean (List.map (fun (r : Suite.row) -> r.Suite.r_sycl_mlir) rs) in
  let ga rs = Common.geomean (List.filter_map (fun (r : Suite.row) -> r.Suite.r_acpp) rs) in
  let f2 = fig2_rows () and f3 = fig3_rows () in
  Printf.printf "\nGeo-mean summary (speedup over DPC++)\n";
  Printf.printf "%-34s %12s %12s\n" "" "SYCL-MLIR" "AdaptiveCpp";
  Printf.printf "%-34s %7.2fx (paper 1.02x) %6.2fx (paper 1.03x)\n"
    "single-kernel" (g f2) (ga f2);
  Printf.printf "%-34s %7.2fx (paper 1.45x) %6.2fx (paper 1.22x)\n"
    "polybench" (g f3) (ga f3);
  Printf.printf "%-34s %7.2fx (paper 1.18x) %6.2fx (paper 1.13x)\n"
    "overall SYCL-Bench" (g (f2 @ f3)) (ga (f2 @ f3));
  let max_pb =
    List.fold_left (fun acc (r : Suite.row) -> max acc r.Suite.r_sycl_mlir) 0.0 f3
  in
  Printf.printf "%-34s %7.2fx (paper 4.32x)\n" "max polybench speedup" max_pb

(* ------------------------------------------------------------------ *)
(* Ablation: contribution of each optimization (Section VIII's         *)
(* attribution discussion)                                             *)
(* ------------------------------------------------------------------ *)

let ablation_configs =
  [
    ("all optimizations", Driver.config Driver.Sycl_mlir);
    ("without loop internalization",
     Driver.config ~enable_internalization:false Driver.Sycl_mlir);
    ("without reduction detection",
     Driver.config ~enable_reduction:false Driver.Sycl_mlir);
    ("without LICM", Driver.config ~enable_licm:false Driver.Sycl_mlir);
    ("without host-device propagation",
     Driver.config ~enable_host_device:false ~enable_alias_refinement:false
       Driver.Sycl_mlir);
  ]

let run_ablation () =
  let workloads =
    [
      Polybench.gemm ~n:64;
      Polybench.syr2k ~n:48;
      Polybench.covariance ~n:64;
      Polybench.correlation ~n:64;
      Single_kernel.sobel7 ~n:64;
      Polybench.gramschmidt ~n:64;
    ]
  in
  Printf.printf "\nAblation — SYCL-MLIR speedup over DPC++ with optimizations disabled\n";
  Printf.printf "%-16s" "benchmark";
  List.iter (fun (name, _) -> Printf.printf " %32s" name) ablation_configs;
  print_newline ();
  List.iter
    (fun (w : Common.workload) ->
      let base = Common.measure (Driver.config Driver.Dpcpp) w in
      Printf.printf "%-16s" w.Common.w_name;
      List.iter
        (fun (_, cfg) ->
          let m = Common.measure cfg w in
          Printf.printf " %29.2fx%s" (Common.speedup base m)
            (if m.Common.m_valid then "  " else " !!"))
        ablation_configs;
      print_newline ())
    workloads;
  (* Pass-statistic attribution the paper quotes. *)
  Printf.printf "\nCompile-time statistics under SYCL-MLIR (cf. Section VIII):\n";
  List.iter
    (fun (w : Common.workload) ->
      let m = Common.measure (Driver.config Driver.Sycl_mlir) w in
      let st k = Mlir.Pass.Stats.get m.Common.m_stats k in
      Printf.printf
        "  %-14s reductions rewritten=%d  refs prefetched=%d  divergent-rejected=%d  noalias pairs=%d\n"
        w.Common.w_name
        (st "detect-reduction/reduction.rewritten")
        (st "loop-internalization/internalization.prefetched")
        (st "loop-internalization/internalization.rejected-divergent")
        (st "host-device-propagation/hostdev.noalias-pair"))
    workloads

(* ------------------------------------------------------------------ *)
(* Pass-time microbenchmarks (Bechamel)                                *)
(* ------------------------------------------------------------------ *)

let run_passes () =
  let open Bechamel in
  let open Bechamel.Toolkit in
  (* Each sample: build a fresh GEMM joint module and run one pipeline
     stage on it. Measures the compile-time cost of the SYCL-MLIR flow
     (the "little cost" claim of Section IV). *)
  let w = Polybench.gemm ~n:64 in
  let fresh () =
    let m = w.Common.w_module () in
    (* Bring the module to the state the device passes see. *)
    ignore
      (Mlir.Pass.run_pipeline ~verify_each:false
         [ Sycl_core.Host_raising.pass; Sycl_core.Canonicalize.pass;
           Sycl_core.Cse.pass; Sycl_core.Host_device_prop.pass () ]
         m);
    m
  in
  let stage name (pass : Mlir.Pass.t) =
    Test.make ~name
      (Staged.stage (fun () ->
           let m = fresh () in
           pass.Mlir.Pass.run m (Mlir.Pass.Stats.create ())))
  in
  let tests =
    Test.make_grouped ~name:"passes"
      [
        Test.make ~name:"host-raising"
          (Staged.stage (fun () ->
               let m = w.Common.w_module () in
               Sycl_core.Host_raising.pass.Mlir.Pass.run m (Mlir.Pass.Stats.create ())));
        stage "licm" Sycl_core.Licm.pass;
        stage "detect-reduction" Sycl_core.Detect_reduction.pass;
        stage "loop-internalization" Sycl_core.Loop_internalization.pass;
        stage "canonicalize" Sycl_core.Canonicalize.pass;
        stage "cse" Sycl_core.Cse.pass;
        stage "full-sycl-mlir-compile"
          (Mlir.Pass.make "full" (fun _ _ ->
               ignore
                 (Driver.compile (Driver.config Driver.Sycl_mlir) (w.Common.w_module ()))));
      ]
  in
  let benchmark () =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:(Some 10) ()
    in
    let raw_results = Benchmark.all cfg instances tests in
    let results =
      List.map (fun instance -> Analyze.all ols instance raw_results) instances
    in
    let results = Analyze.merge ols instances results in
    results
  in
  Printf.printf "\nPass-time microbenchmarks (Bechamel, ns per run)\n";
  let results = benchmark () in
  Hashtbl.iter
    (fun _measure tbl ->
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "  %-40s %12.0f ns\n" name est
          | _ -> Printf.printf "  %-40s (no estimate)\n" name)
        tbl)
    results


(* ------------------------------------------------------------------ *)
(* Kernel fusion extension (Section VII outlook)                       *)
(* ------------------------------------------------------------------ *)

let run_fusion () =
  Printf.printf "\nKernel fusion extension (compile-time, Section VII outlook)\n";
  let w = Extensions.elementwise_chain ~n:16384 in
  let measure enable_fusion =
    let m = w.Common.w_module () in
    let cfg = Driver.config ~enable_fusion Driver.Sycl_mlir in
    let compiled = Driver.compile cfg m in
    let args, validate = w.Common.w_data () in
    let result = Sycl_runtime.Host_interp.run ~module_op:m args in
    (result, validate (), Mlir.Pass.merged_stats compiled.Driver.pipeline_result)
  in
  let unfused, v1, _ = measure false in
  let fused, v2, stats = measure true in
  Printf.printf "  unfused: %d launches, %d cycles (valid %b)\n"
    unfused.Sycl_runtime.Host_interp.kernel_launches
    unfused.Sycl_runtime.Host_interp.total_cycles v1;
  Printf.printf "  fused:   %d launches, %d cycles (valid %b)  speedup %.2fx\n"
    fused.Sycl_runtime.Host_interp.kernel_launches
    fused.Sycl_runtime.Host_interp.total_cycles v2
    (float_of_int unfused.Sycl_runtime.Host_interp.total_cycles
    /. float_of_int (max 1 fused.Sycl_runtime.Host_interp.total_cycles));
  Printf.printf "  kernels fused: %d, intermediate loads forwarded: %d\n"
    (Mlir.Pass.Stats.get stats "kernel-fusion/fusion.fused")
    (Mlir.Pass.Stats.get stats "store-forwarding/store-forwarding.forwarded")

(* ------------------------------------------------------------------ *)
(* Differential fuzzing (see DESIGN.md, "Testing & fuzzing")            *)
(* ------------------------------------------------------------------ *)

(** [fuzz] — the differential-testing harness over the random IR
    generator and the workload suite. Three oracles per DESIGN.md:
    (a) print→parse→print fixpoint on every generated module,
    (b) verifier acceptance after every pass of the SYCL-MLIR pipeline,
    (c) simulator differential (optimized vs. unoptimized) on randomized
        ND-ranges, with pass bisection naming the first divergent pass,
    (d) sequential-vs-parallel run-digest determinism,
    (e) telemetry neutrality,
    (f) compile-service cache coherence (cold, coalesced and cached
        compiles byte-identical to a direct pipeline run),
    (h) rewrite-driver equivalence (worklist vs. legacy bounded driver:
        on modules where the legacy driver converges, byte-identical
        canonicalized IR),
    (i) cache-model coherence (under dm and assoc models the cache
        counters conserve exactly — hits + misses = global transactions
        on every launch — the full digest is byte-identical between 1
        and 4 domains, and an explicit flat model is byte-identical to
        the default no-cache run).
    Oracles (b)–(i) run on workload modules every [--diff-every]
    iterations; oracle (a) runs on a fresh random module every
    iteration. *)
let run_fuzz () =
  let seed = ref 42 and iters = ref 500 and diff_every = ref 100 in
  let json_path = ref None in
  let rec parse_args = function
    | "--seed" :: v :: rest -> seed := int_of_string v; parse_args rest
    | "--iters" :: v :: rest -> iters := int_of_string v; parse_args rest
    | "--diff-every" :: v :: rest -> diff_every := int_of_string v; parse_args rest
    | "--json" :: v :: rest -> json_path := Some v; parse_args rest
    | [] -> ()
    | other :: _ ->
      Printf.eprintf "fuzz: unknown argument %s\n" other;
      exit 2
  in
  parse_args (subcommand_args ());
  Dialects.Register.init ();
  (* (iteration, oracle, detail) *)
  let failures : (int * string * string) list ref = ref [] in
  let record i oracle detail =
    failures := (i, oracle, detail) :: !failures;
    Printf.printf "  FAIL iter=%d %s: %s\n%!" i oracle detail
  in
  let roundtrip_runs = ref 0 and diff_runs = ref 0 in
  for i = 0 to !iters - 1 do
    (* Oracle (a) on a fresh random module — once in the default form and
       once under --mlir-print-debuginfo, so the loc(...) syntax is
       fuzzed too (the generator attaches random nested locations). *)
    incr roundtrip_runs;
    let g = Mlir.Irgen.create (!seed + i) in
    let m = Mlir.Irgen.gen_module g in
    (match Mlir.Difftest.check_roundtrip m with
    | Ok () -> ()
    | Error f -> record i f.Mlir.Difftest.f_oracle f.Mlir.Difftest.f_detail);
    (match Mlir.Difftest.check_roundtrip ~debuginfo:true m with
    | Ok () -> ()
    | Error f ->
      record i (f.Mlir.Difftest.f_oracle ^ "-debuginfo") f.Mlir.Difftest.f_detail);
    (* Oracles (b) and (c) on a randomized workload, every diff-every
       iterations (they execute the simulator, so they are costly). *)
    if i mod !diff_every = 0 then begin
      incr diff_runs;
      let rng = Random.State.make [| !seed; i |] in
      let w = Differential.random_workload rng in
      let cfg = Driver.config Driver.Sycl_mlir in
      let passes = Driver.host_pipeline cfg @ Driver.device_pipeline cfg in
      (match
         Mlir.Difftest.check_pipeline_verified ~passes (w.Common.w_module ())
       with
      | Ok () -> ()
      | Error f ->
        record i f.Mlir.Difftest.f_oracle
          (w.Common.w_name ^ ": " ^ f.Mlir.Difftest.f_detail));
      (match Differential.check w with
      | Ok () -> ()
      | Error d ->
        record i "differential" (Differential.divergence_to_string d));
      (* Oracle (d): sequential vs. parallel backend determinism — the
         full run digest (stats, metrics, profile, buffers) must be
         byte-identical under worker domains. *)
      (match Differential.check_parallel ~domains:4 w with
      | Ok () -> ()
      | Error f ->
        record i f.Mlir.Difftest.f_oracle f.Mlir.Difftest.f_detail);
      (* Oracle (e): telemetry neutrality — enabling timing
         instrumentation and trace/metrics export must not change the
         compiled IR or the run digest. *)
      (match Differential.check_telemetry_neutral w with
      | Ok () -> ()
      | Error f ->
        record i f.Mlir.Difftest.f_oracle f.Mlir.Difftest.f_detail);
      (* Oracle (f): compile-service cache coherence — cold, coalesced
         and cached compiles through a multi-domain service must be
         byte-identical to a direct pipeline run. *)
      (match Differential.check_service_cache w with
      | Ok () -> ()
      | Error f ->
        record i f.Mlir.Difftest.f_oracle f.Mlir.Difftest.f_detail);
      (* Oracle (g): attribution conservation — every launch's per-op
         attribution must decompose its launch statistics exactly. *)
      (match Differential.check_attribution w with
      | Ok () -> ()
      | Error f ->
        record i f.Mlir.Difftest.f_oracle f.Mlir.Difftest.f_detail);
      (* Oracle (h): rewrite-driver equivalence — where the legacy
         bounded driver converges, the worklist driver must reach the
         same fixpoint, byte for byte. *)
      (match Differential.check_worklist_equivalence w with
      | Ok () -> ()
      | Error f ->
        record i f.Mlir.Difftest.f_oracle f.Mlir.Difftest.f_detail);
      (* Oracle (i): cache-model coherence — exact conservation under
         both non-flat models, domain-count byte-identity of the cache
         digest, and flat ≡ default. *)
      match Differential.check_cache_coherence ~domains:4 w with
      | Ok () -> ()
      | Error f ->
        record i f.Mlir.Difftest.f_oracle f.Mlir.Difftest.f_detail
    end
  done;
  let failures = List.rev !failures in
  Printf.printf
    "\nfuzz: seed=%d iters=%d — %d round-trip checks, %d verify+differential rounds, %d failure(s)\n"
    !seed !iters !roundtrip_runs !diff_runs (List.length failures);
  (match !json_path with
  | None -> ()
  | Some path ->
    let doc =
      Mlir.Json.Obj
        [
          ("seed", Mlir.Json.Int !seed);
          ("iters", Mlir.Json.Int !iters);
          ("roundtrip_checks", Mlir.Json.Int !roundtrip_runs);
          ("differential_rounds", Mlir.Json.Int !diff_runs);
          ( "failures",
            Mlir.Json.List
              (List.map
                 (fun (i, oracle, detail) ->
                   Mlir.Json.Obj
                     [
                       ("iter", Mlir.Json.Int i);
                       ("oracle", Mlir.Json.String oracle);
                       ("detail", Mlir.Json.String detail);
                     ])
                 failures) );
        ]
    in
    Out_channel.with_open_text path (fun oc ->
        output_string oc (Mlir.Json.to_string doc);
        output_string oc "\n");
    Printf.printf "fuzz: report written to %s\n" path);
  if failures <> [] then exit 1

(* ------------------------------------------------------------------ *)
(* Benchmark-regression pipeline (see Bench_report)                    *)
(* ------------------------------------------------------------------ *)

(** [report] — measure the full suite and write BENCH_<label>.json. *)
let run_report () =
  let label = ref "current" and out = ref None in
  let rec parse_args = function
    | "--label" :: v :: rest -> label := v; parse_args rest
    | "--out" :: v :: rest -> out := Some v; parse_args rest
    | [] -> ()
    | other :: _ ->
      Printf.eprintf "report: unknown argument %s\n" other;
      exit 2
  in
  parse_args (subcommand_args ());
  let path =
    match !out with Some p -> p | None -> Printf.sprintf "BENCH_%s.json" !label
  in
  let r = Bench_report.collect ~label:!label (Suite.all ()) in
  Out_channel.with_open_text path (fun oc ->
      output_string oc (Bench_report.to_json r));
  let invalid =
    List.concat_map
      (fun (e : Bench_report.entry) ->
        List.filter_map
          (fun (cfg, (m : Bench_report.config_metrics)) ->
            if m.Bench_report.cm_valid then None
            else Some (e.Bench_report.e_name ^ " [" ^ cfg ^ "]"))
          e.Bench_report.e_configs)
      r.Bench_report.r_entries
  in
  Printf.printf "report: %d workloads written to %s\n"
    (List.length r.Bench_report.r_entries)
    path;
  List.iter (fun s -> Printf.printf "  !! failed validation: %s\n" s) invalid

(** [compare OLD NEW] — regression gate; exits 1 when NEW regresses. *)
let run_compare () =
  let tolerance = ref 0.05 and files = ref [] in
  let rec parse_args = function
    | "--tolerance" :: v :: rest -> (
      (match float_of_string_opt v with
      | Some f when f >= 0.0 -> tolerance := f
      | _ ->
        Printf.eprintf "compare: bad --tolerance %s\n" v;
        exit 2);
      parse_args rest)
    | f :: rest -> files := f :: !files; parse_args rest
    | [] -> ()
  in
  parse_args (subcommand_args ());
  let old_path, new_path =
    match List.rev !files with
    | [ a; b ] -> (a, b)
    | _ ->
      Printf.eprintf "usage: compare OLD.json NEW.json [--tolerance F]\n";
      exit 2
  in
  let load path =
    match
      Bench_report.of_json (In_channel.with_open_text path In_channel.input_all)
    with
    | r -> r
    | exception Sys_error msg ->
      Printf.eprintf "compare: cannot read %s: %s\n" path msg;
      exit 2
    | exception Bench_report.Report_error msg ->
      Printf.eprintf "compare: %s: %s\n" path msg;
      exit 2
  in
  let baseline = load old_path and current = load new_path in
  let issues =
    Bench_report.compare_reports ~tolerance:!tolerance ~baseline current
  in
  Printf.printf
    "compare: %s (%d workloads) vs %s (%d workloads), tolerance %.1f%%\n"
    baseline.Bench_report.r_label
    (List.length baseline.Bench_report.r_entries)
    current.Bench_report.r_label
    (List.length current.Bench_report.r_entries)
    (100.0 *. !tolerance);
  if issues = [] then Printf.printf "compare: no regressions\n"
  else begin
    List.iter
      (fun i -> Printf.printf "  REGRESSION %s\n" (Bench_report.issue_to_string i))
      issues;
    Printf.printf "compare: %d issue(s)\n" (List.length issues);
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Observability: compile-time timing tree + simulator trace for GEMM   *)
(* ------------------------------------------------------------------ *)

let run_profile () =
  let hotspots = ref false in
  let rec parse_args = function
    | "--hotspots" :: rest -> hotspots := true; parse_args rest
    | [] -> ()
    | other :: _ ->
      Printf.eprintf "profile: unknown argument %s\n" other;
      exit 2
  in
  parse_args (subcommand_args ());
  let w = Polybench.gemm ~n:64 in
  (* Under --hotspots run a located copy (printed and re-parsed under a
     virtual file name) so the attribution reports source lines. *)
  let w = if !hotspots then Annotate.located_workload w else w in
  (* Compile with the timing instrumentation — the per-pass wall-time
     report backs the "little compile-time cost" discussion. *)
  let m = w.Common.w_module () in
  let tm = Mlir.Instrument.timer () in
  ignore
    (Driver.compile
       ~instrumentations:[ Mlir.Instrument.timing tm ]
       (Driver.config Driver.Sycl_mlir) m);
  Printf.printf "\nGEMM (n=64) SYCL-MLIR compile timing\n";
  Format.printf "%a@?" Mlir.Instrument.pp_timing (Mlir.Instrument.timing_report tm);
  (* Execute and export the run's charge timeline as a Chrome trace. *)
  let args, _validate = w.Common.w_data () in
  let result = Sycl_runtime.Host_interp.run ~module_op:m args in
  let events = result.Sycl_runtime.Host_interp.events in
  let path = "gemm_trace.json" in
  Out_channel.with_open_text path (fun oc ->
      output_string oc (Sycl_sim.Profile.to_chrome_json events));
  Printf.printf "\nSimulated-run profile (trace written to %s):\n" path;
  Format.printf "%a@?" Sycl_sim.Profile.pp_table (Sycl_sim.Profile.of_events events);
  if !hotspots then begin
    print_newline ();
    print_string
      (Sycl_sim.Attribution.hotspots_to_string (Annotate.merged_attribution result))
  end

let () =
  let t0 = Unix.gettimeofday () in
  (try
     match cmd with
  | "fig2" -> run_fig2 ()
  | "fig3" -> run_fig3 ()
  | "stencil" -> run_stencil ()
  | "geomean" -> run_geomean ()
  | "ablation" -> run_ablation ()
  | "passes" -> run_passes ()
  | "fusion" -> run_fusion ()
  | "profile" -> run_profile ()
  | "fuzz" -> run_fuzz ()
  | "report" -> run_report ()
  | "compare" -> run_compare ()
  | "all" ->
    run_fig2 ();
    run_fig3 ();
    run_stencil ();
    run_geomean ();
    run_ablation ();
    run_fusion ();
    run_passes ()
  | other ->
    Printf.eprintf "unknown command %s (fig2|fig3|stencil|geomean|ablation|fusion|passes|profile|fuzz|report|compare|all)\n"
      other;
    exit 1
   with Sycl_sim.Interp.Race_detected races ->
     Printf.eprintf
       "RACE: %d pair(s) of work-groups wrote overlapping global locations\n"
       (List.length races);
     List.iter
       (fun r -> Printf.eprintf "  %s\n" (Sycl_sim.Interp.describe_race r))
       races;
     exit 1);
  Printf.printf "\n[bench completed in %.1fs]\n" (Unix.gettimeofday () -. t0)
