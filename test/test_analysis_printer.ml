(* Analysis printers: annotations land in the IR, the textual report
   names the interesting facts, the annotated module round-trips through
   printer/parser/verifier, and strip_annotations restores the module. *)

open Mlir
module AP = Sycl_core.Analysis_printer

let matmul_path = "../examples/matmul.mlir"

let contains ~needle hay =
  let nl = String.length needle in
  let rec go i =
    i + nl <= String.length hay && (String.sub hay i nl = needle || go (i + 1))
  in
  go 0

let check_contains report needle =
  Alcotest.(check bool) (Printf.sprintf "report mentions %S" needle) true
    (contains ~needle report)

let printed_analyses () =
  Helpers.init ();
  let src = In_channel.with_open_text matmul_path In_channel.input_all in
  let m = Parser.parse_module src in
  let buf = Buffer.create 1024 in
  AP.set_sink (Buffer.add_string buf);
  let result =
    Pass.run_pipeline ~verify_each:true
      [ AP.print_alias; AP.print_uniformity; AP.print_reaching_defs;
        AP.print_memory_access ]
      m
  in
  AP.set_sink prerr_string;
  (m, Buffer.contents buf, result)

let has_attr m name =
  List.exists
    (fun op -> Core.attr op name <> None)
    (Core.collect m ~p:(fun _ -> true))

let tests_list =
  [
    Alcotest.test_case "matmul report names the facts" `Quick (fun () ->
        let _m, report, _r = printed_analyses () in
        check_contains report "=== alias: @matmul ===";
        check_contains report "accessor arg";
        check_contains report "may-alias";
        check_contains report "=== uniformity: @matmul ===";
        check_contains report "kernel: true";
        check_contains report "=== reaching-defs: @matmul ===";
        check_contains report "MODS";
        check_contains report "=== memory-access: @matmul ===");
    Alcotest.test_case "annotations land in the IR with nonzero stats" `Quick
      (fun () ->
        let m, _report, result = printed_analyses () in
        List.iter
          (fun a ->
            Alcotest.(check bool) (a ^ " present") true (has_attr m a))
          [ AP.alias_group_attr; AP.arg_alias_groups_attr; AP.uniform_attr;
            AP.arg_uniform_attr; AP.reaching_mods_attr; AP.reaching_pmods_attr;
            AP.def_id_attr; AP.access_matrix_attr; AP.access_offsets_attr;
            AP.coalescing_attr; AP.temporal_reuse_attr ];
        let st = Pass.merged_stats result in
        List.iter
          (fun key ->
            Alcotest.(check bool) (key ^ " > 0") true (Pass.Stats.get st key > 0))
          [ "print-alias/alias.groups"; "print-alias/alias.pointer-values";
            "print-uniformity/uniformity.uniform";
            "print-uniformity/uniformity.non-uniform";
            "print-reaching-defs/reaching-defs.loads";
            "print-reaching-defs/reaching-defs.defs";
            "print-memory-access/memory-access.accesses" ]);
    Alcotest.test_case "annotated module round-trips and verifies" `Quick
      (fun () ->
        let m, _report, _r = printed_analyses () in
        let printed = Printer.to_string m in
        let reparsed = Parser.parse_module printed in
        Helpers.check_verifies ~msg:"reparsed annotated module" reparsed;
        Alcotest.(check string) "print→parse→print fixpoint" printed
          (Printer.to_string reparsed);
        Alcotest.(check bool) "annotations survive the round-trip" true
          (has_attr reparsed AP.access_matrix_attr
          && has_attr reparsed AP.alias_group_attr));
    Alcotest.test_case "strip_annotations restores the original module" `Quick
      (fun () ->
        let m, _report, _r = printed_analyses () in
        AP.strip_annotations m;
        List.iter
          (fun a ->
            Alcotest.(check bool) (a ^ " stripped") false (has_attr m a))
          AP.annotation_attrs;
        let src = In_channel.with_open_text matmul_path In_channel.input_all in
        let fresh = Parser.parse_module src in
        Alcotest.(check string) "stripped print equals pristine print"
          (Printer.to_string fresh) (Printer.to_string m));
  ]

let tests = ("analysis-printer", tests_list)
