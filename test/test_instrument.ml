(* Pass instrumentation: timing-tree shape, IR-change detection via
   module fingerprints, and before/after IR snapshots. *)

open Mlir
module A = Dialects.Arith

(* A module whose function contains one dead pure op: the first dce run
   erases it (IR changes), a second run finds nothing (no-op). *)
let module_with_dead_op () =
  let m, _f =
    Helpers.with_func ~args:[ Types.i64 ] (fun b vals ->
        let x = List.hd vals in
        ignore (A.addi b x x))
  in
  m

let tests_list =
  [
    Alcotest.test_case "timing tree merges repeated passes by name" `Quick
      (fun () ->
        let m = module_with_dead_op () in
        let tm = Instrument.timer () in
        ignore
          (Pass.run_pipeline ~verify_each:false
             ~instrumentations:[ Instrument.timing tm ]
             [ Sycl_core.Dce.pass; Sycl_core.Canonicalize.pass;
               Sycl_core.Dce.pass ]
             m);
        let root = Instrument.timing_report tm in
        let names =
          List.map (fun c -> c.Instrument.t_name) root.Instrument.t_children
        in
        Alcotest.(check (list string)) "one line per distinct pass"
          [ "dce"; "canonicalize" ] names;
        let dce = List.hd root.Instrument.t_children in
        Alcotest.(check int) "both dce runs merged" 2 dce.Instrument.t_count;
        Alcotest.(check bool) "root covers its children" true
          (root.Instrument.t_wall
          >= List.fold_left
               (fun a c -> a +. c.Instrument.t_wall)
               0.0 root.Instrument.t_children);
        (* The report must render (with a Total line) without raising. *)
        let buf = Buffer.create 256 in
        let fmt = Format.formatter_of_buffer buf in
        Instrument.pp_timing fmt root;
        Format.pp_print_flush fmt ();
        Alcotest.(check bool) "report has a Total line" true
          (let s = Buffer.contents buf in
           let rec contains i =
             i + 5 <= String.length s
             && (String.sub s i 5 = "Total" || contains (i + 1))
           in
           contains 0));
    Alcotest.test_case "ir-change flags the no-op second dce run" `Quick
      (fun () ->
        let m = module_with_dead_op () in
        let cl = Instrument.change_log () in
        ignore
          (Pass.run_pipeline ~verify_each:false
             ~instrumentations:[ Instrument.ir_change cl ]
             [ Sycl_core.Dce.pass; Sycl_core.Dce.pass ]
             m);
        Alcotest.(check (list (pair string bool)))
          "first run changes, second is a no-op"
          [ ("dce", true); ("dce", false) ]
          (Instrument.changes cl);
        Alcotest.(check (list string)) "no-op list" [ "dce" ]
          (Instrument.noop_passes cl));
    Alcotest.test_case "fingerprint is stable and change-sensitive" `Quick
      (fun () ->
        let m = module_with_dead_op () in
        let fp1 = Instrument.fingerprint m in
        Alcotest.(check bool) "re-fingerprinting is identical" true
          (Digest.equal fp1 (Instrument.fingerprint m));
        ignore
          (Pass.run_pipeline ~verify_each:false [ Sycl_core.Dce.pass ] m);
        Alcotest.(check bool) "erasing an op changes the fingerprint" false
          (Digest.equal fp1 (Instrument.fingerprint m)));
    Alcotest.test_case "dump-after fires once per matching pass run" `Quick
      (fun () ->
        let m = module_with_dead_op () in
        let buf = Buffer.create 256 in
        ignore
          (Pass.run_pipeline ~verify_each:false
             ~instrumentations:
               [ Instrument.dump ~sink:(Buffer.add_string buf) ~filter:"dce" () ]
             [ Sycl_core.Dce.pass; Sycl_core.Canonicalize.pass;
               Sycl_core.Dce.pass ]
             m);
        let s = Buffer.contents buf in
        let count_banner banner =
          let bl = String.length banner in
          let rec go i acc =
            if i + bl > String.length s then acc
            else if String.sub s i bl = banner then go (i + bl) (acc + 1)
            else go (i + 1) acc
          in
          go 0 0
        in
        Alcotest.(check int) "two dce banners" 2
          (count_banner "// ----- IR after dce -----");
        Alcotest.(check int) "canonicalize not dumped" 0
          (count_banner "// ----- IR after canonicalize -----"));
  ]

let tests = ("instrument", tests_list)
