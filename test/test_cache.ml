(* The cache-hierarchy performance model: direct-mapped conflict
   behavior, set-associative LRU order, exact conservation against the
   launch counters on barrier and stencil workloads, domain-count
   independence of every cache surface, flat-model byte compatibility,
   and the reuse-analysis cross-check (static prediction vs measured hit
   rate). *)

open Mlir
module Cache = Sycl_sim.Cache
module Cost = Sycl_sim.Cost
module H = Sycl_runtime.Host_interp
module AP = Sycl_core.Analysis_printer
open Sycl_workloads

let matmul_text () =
  In_channel.with_open_text "../examples/matmul.mlir" In_channel.input_all

let contains ~needle hay =
  let nl = String.length needle in
  let rec go i =
    i + nl <= String.length hay && (String.sub hay i nl = needle || go (i + 1))
  in
  go 0

(* Parse + compile the matmul example exactly like `sycl-bench --file`,
   then run it under [cache_model]. *)
let run_matmul ?sim_domains ?cache_model () =
  Helpers.init ();
  let m = Parser.parse_module ~file:"matmul.mlir" (matmul_text ()) in
  ignore
    (Sycl_core.Driver.compile
       (Sycl_core.Driver.config Sycl_core.Driver.Sycl_mlir)
       m);
  let args = Annotate.synth_args m ~size:16 in
  (m, H.run ?sim_domains ?cache_model ~module_op:m args)

let run_workload ?cache_model (w : Common.workload) =
  Helpers.init ();
  let m = w.Common.w_module () in
  ignore
    (Sycl_core.Driver.compile
       (Sycl_core.Driver.config Sycl_core.Driver.Sycl_mlir)
       m);
  let args, _ = w.Common.w_data () in
  H.run ?cache_model ~module_op:m args

let state_exn model =
  match Cache.create Cost.default model with
  | Some s -> s
  | None -> Alcotest.fail "expected a cache state for a non-flat model"

let check_conserved name (r : H.run_result) =
  (match Annotate.check_cache_conservation r with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: %s" name msg);
  (* And hits + misses decompose the transaction count exactly. *)
  List.iter2
    (fun (_, (s : Cost.launch_stats)) (_, _tab) ->
      Alcotest.(check int)
        (name ^ ": hits + misses = global transactions")
        s.Cost.global_transactions
        (s.Cost.cache_hits + s.Cost.cache_misses))
    r.H.per_kernel r.H.per_kernel_cache

let tests_list =
  [
    Alcotest.test_case "direct-mapped: conflicting lines evict each other"
      `Quick (fun () ->
        (* Cost.default has 64 lines; direct-mapped means line l lives in
           set l mod 64, so lines 0 and 64 of one allocation conflict. *)
        let s = state_exn Cost.Direct_mapped in
        let a = Cache.access s ~aid:0 ~line:0 in
        Alcotest.(check bool) "cold miss" false a.Cache.o_hit;
        Alcotest.(check bool) "no eviction on empty set" false
          a.Cache.o_evicted;
        let b = Cache.access s ~aid:0 ~line:0 in
        Alcotest.(check bool) "warm hit" true b.Cache.o_hit;
        let c = Cache.access s ~aid:0 ~line:64 in
        Alcotest.(check bool) "conflict misses" false c.Cache.o_hit;
        Alcotest.(check bool) "conflict evicts" true c.Cache.o_evicted;
        let d = Cache.access s ~aid:0 ~line:0 in
        Alcotest.(check bool) "victim is gone" false d.Cache.o_hit;
        (* Tags carry the allocation id: same line of another allocation
           is a different block (and another conflict). *)
        let e = Cache.access s ~aid:1 ~line:0 in
        Alcotest.(check bool) "other allocation misses" false e.Cache.o_hit);
    Alcotest.test_case "set-associative: exact LRU eviction order" `Quick
      (fun () ->
        (* 64 lines / 4 ways = 16 sets; lines 0,16,32,48,64 of one
           allocation all index set 0. *)
        let s = state_exn Cost.Set_associative in
        let probe line = Cache.access s ~aid:0 ~line in
        List.iter
          (fun line ->
            Alcotest.(check bool)
              (Printf.sprintf "cold miss on %d" line)
              false (probe line).Cache.o_hit)
          [ 0; 16; 32; 48 ];
        (* Touch 0 so 16 becomes least-recently used. *)
        Alcotest.(check bool) "0 hits" true (probe 0).Cache.o_hit;
        let f = probe 64 in
        Alcotest.(check bool) "64 misses" false f.Cache.o_hit;
        Alcotest.(check bool) "64 evicts the LRU way" true f.Cache.o_evicted;
        Alcotest.(check bool) "0 survived (was refreshed)" true
          (probe 0).Cache.o_hit;
        Alcotest.(check bool) "16 was the victim" false (probe 16).Cache.o_hit;
        Alcotest.(check bool) "48 still resident" true (probe 48).Cache.o_hit);
    Alcotest.test_case
      "barrier (gemm) and stencil (jacobi) runs conserve exactly" `Quick
      (fun () ->
        Helpers.init ();
        List.iter
          (fun model ->
            let gemm =
              run_workload ~cache_model:model
                (Annotate.located_workload (Polybench.gemm ~n:16))
            in
            check_conserved "gemm" gemm;
            Alcotest.(check bool) "gemm hit barriers" true
              (List.exists
                 (fun (_, s) -> s.Cost.barriers > 0)
                 gemm.H.per_kernel);
            check_conserved "jacobi"
              (run_workload ~cache_model:model
                 (Stencil.jacobi ~n:64 ~iters:2)))
          [ Cost.Direct_mapped; Cost.Set_associative ]);
    Alcotest.test_case "matmul hotspot table gains gated hit/miss columns"
      `Quick (fun () ->
        let _, r = run_matmul ~cache_model:Cost.Direct_mapped () in
        let table =
          Sycl_sim.Attribution.hotspots_to_string
            (Annotate.merged_attribution r)
        in
        let golden =
          In_channel.with_open_text "../examples/matmul.hotspots.txt"
            In_channel.input_all
        in
        Alcotest.(check string) "golden dm hotspot table" golden table;
        List.iter
          (fun col ->
            Alcotest.(check bool) (col ^ " column present") true
              (contains ~needle:col table))
          [ "hits"; "misses"; "hitrate" ]);
    Alcotest.test_case "cache surfaces are byte-identical across domains"
      `Quick (fun () ->
        List.iter
          (fun model ->
            let _, r1 = run_matmul ~sim_domains:1 ~cache_model:model () in
            let _, r4 = run_matmul ~sim_domains:4 ~cache_model:model () in
            let render r =
              String.concat ""
                (List.map
                   (fun (name, tab) -> name ^ ":\n" ^ Cache.render tab)
                   r.H.per_kernel_cache)
            in
            let json r =
              String.concat ""
                (List.map
                   (fun (_, tab) -> Json.to_string (Cache.to_json tab))
                   r.H.per_kernel_cache)
            in
            Alcotest.(check string) "render identical" (render r1) (render r4);
            Alcotest.(check string) "JSON identical" (json r1) (json r4))
          [ Cost.Direct_mapped; Cost.Set_associative ]);
    Alcotest.test_case "flat model is a byte-compatible no-op" `Quick
      (fun () ->
        let _, r = run_matmul () in
        Alcotest.(check int) "no cache tables" 0
          (List.length r.H.per_kernel_cache);
        List.iter
          (fun (_, (s : Cost.launch_stats)) ->
            Alcotest.(check int) "no hits" 0 s.Cost.cache_hits;
            Alcotest.(check int) "no misses" 0 s.Cost.cache_misses;
            Alcotest.(check int) "no evictions" 0 s.Cost.cache_evictions;
            Alcotest.(check int) "no wait cycles" 0 s.Cost.cache_mem_wait_cycles)
          r.H.per_kernel;
        let table =
          Sycl_sim.Attribution.hotspots_to_string
            (Annotate.merged_attribution r)
        in
        Alcotest.(check bool) "no hitrate column under flat" false
          (contains ~needle:"hitrate" table);
        (* Explicit flat behaves exactly like the default. *)
        let _, r_flat = run_matmul ~cache_model:Cost.Flat () in
        Alcotest.(check string) "explicit flat table identical" table
          (Sycl_sim.Attribution.hotspots_to_string
             (Annotate.merged_attribution r_flat)));
    Alcotest.test_case
      "predicted in-capacity reuse implies >= 90%% measured hit rate" `Quick
      (fun () ->
        (* Static side: the reuse printer annotates constant-stride
           accesses of the matmul source with their predicted reuse
           distance; loop accesses it leaves unannotated are predicted
           streaming. Dynamic side: compile and run the same source
           under the 4-way LRU model (direct-mapped would conflict-miss,
           which is exactly why the cross-check runs under assoc). The
           optimized pipeline fuses source locations, so a runtime row
           inherits a prediction when its location names a predicted
           source line and no streaming one. *)
        Helpers.init ();
        let src = Parser.parse_module ~file:"matmul.mlir" (matmul_text ()) in
        AP.set_sink ignore;
        ignore (Pass.run_pipeline [ AP.print_reuse ] src);
        AP.set_sink prerr_string;
        let capacity = Cost.default.Cost.cache_lines in
        let predicted = ref [] and streaming = ref [] in
        let loops =
          Core.collect src ~p:(fun o ->
              Dialects.Scf.is_for o || Dialects.Affine_ops.is_for o)
        in
        List.iter
          (fun loop ->
            Core.walk loop ~f:(fun op ->
                if op.Core.name = "memref.load" || op.Core.name = "memref.store"
                then
                  let loc = Loc.to_string op.Core.loc in
                  match Core.attr op AP.reuse_dist_attr with
                  | Some (Attr.Int d) when d <= capacity ->
                    predicted := loc :: !predicted
                  | _ -> streaming := loc :: !streaming))
          loops;
        Alcotest.(check bool) "some accesses predicted in-capacity" true
          (!predicted <> []);
        Alcotest.(check bool) "some accesses predicted streaming" true
          (!streaming <> []);
        let _, r = run_matmul ~cache_model:Cost.Set_associative () in
        let tab =
          match Annotate.merged_cache r with
          | Some t -> t
          | None -> Alcotest.fail "no cache table under assoc"
        in
        let hits = ref 0 and misses = ref 0 and matched = ref 0 in
        List.iter
          (fun ((_, loc), (row : Cache.row)) ->
            let names l = contains ~needle:l loc in
            if List.exists names !predicted && not (List.exists names !streaming)
            then begin
              incr matched;
              hits := !hits + row.Cache.r_hits;
              misses := !misses + row.Cache.r_misses
            end)
          (Cache.rows tab);
        Alcotest.(check bool) "predicted rows observed dynamically" true
          (!matched > 0);
        let rate = Cache.hit_rate ~hits:!hits ~misses:!misses in
        if rate < 0.9 then
          Alcotest.failf
            "predicted in-capacity accesses measured only %.1f%% hits \
             (%d/%d over %d rows)"
            (100.0 *. rate) !hits (!hits + !misses) !matched);
  ]

let tests = ("cache", tests_list)
