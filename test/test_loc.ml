(* Source-location tracking and the location-aware diagnostics engine:
   parser-recorded positions, loc(...) round-trips, clone/transform
   propagation (inline -> CallSite, kernel fusion -> Fused), located
   remarks / verifier diagnostics / race reports, and the per-pass
   location-coverage instrumentation. *)

open Mlir
module A = Dialects.Arith
module K = Sycl_frontend.Kernel
module S = Sycl_core.Sycl_types
module Interp = Sycl_sim.Interp
module Memory = Sycl_sim.Memory

let loc_t = Alcotest.testable (Fmt.of_to_string Loc.to_string) Loc.equal

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Constructors and rendering                                          *)
(* ------------------------------------------------------------------ *)

let constructor_cases =
  [
    Alcotest.test_case "smart constructors canonicalize" `Quick (fun () ->
        let f = Loc.file ~file:"a.cpp" ~line:1 ~col:2 in
        Alcotest.(check loc_t) "callsite collapses unknown callee" f
          (Loc.callsite ~callee:Loc.unknown ~caller:f);
        Alcotest.(check loc_t) "callsite collapses unknown caller" f
          (Loc.callsite ~callee:f ~caller:Loc.unknown);
        Alcotest.(check loc_t) "fused [] is unknown" Loc.unknown (Loc.fused []);
        Alcotest.(check loc_t) "fused singleton unwraps" f (Loc.fused [ f ]);
        Alcotest.(check loc_t) "fused drops unknown, dedups, flattens"
          (Loc.fused [ f; Loc.name "k" ])
          (Loc.fused [ Loc.unknown; f; Loc.fused [ f; Loc.name "k" ] ]));
    Alcotest.test_case "resolve and diag_prefix walk the chain" `Quick (fun () ->
        let f = Loc.file ~file:"mm.cpp" ~line:7 ~col:3 in
        let l =
          Loc.callsite ~callee:(Loc.name ~child:f "body") ~caller:(Loc.name "host")
        in
        Alcotest.(check (option (triple string int int)))
          "resolves through callsite and name" (Some ("mm.cpp", 7, 3))
          (Loc.resolve l);
        Alcotest.(check string) "prefix" "mm.cpp:7:3: " (Loc.diag_prefix l);
        Alcotest.(check string) "unknown has no prefix" ""
          (Loc.diag_prefix Loc.unknown);
        Alcotest.(check bool) "describe says inlined from" true
          (contains (Loc.describe l) "inlined from"));
  ]

(* ------------------------------------------------------------------ *)
(* Parser positions and loc(...) round-trip                            *)
(* ------------------------------------------------------------------ *)

let parse_one_op src =
  Helpers.init ();
  let m = Parser.parse_module ~file:"in.mlir" src in
  let fn = List.hd (Core.module_block m).Core.body in
  (m, fn)

let parser_cases =
  [
    Alcotest.test_case "parser records textual positions" `Quick (fun () ->
        let m =
          Parser.parse_module ~file:"pos.mlir"
            "builtin.module() ({\n\
            \  func.func() ({\n\
            \  ^bb0():\n\
            \    %0 = arith.constant() {value = 1} : () -> (i64)\n\
            \    func.return() : () -> ()\n\
             \  }) {sym_name = \"f\", function_type = () -> ()} : () -> ()\n\
             }) : () -> ()"
        in
        let c = List.hd (Core.collect_named m "arith.constant") in
        (* Column of the start of the op statement (the result list). *)
        Alcotest.(check loc_t) "file:line:col of the op token"
          (Loc.file ~file:"pos.mlir" ~line:4 ~col:5)
          c.Core.loc);
    Alcotest.test_case "explicit loc(...) wins over the textual position"
      `Quick (fun () ->
        let m =
          Parser.parse_module ~file:"pos.mlir"
            "builtin.module() ({\n\
            \  test.global() {sym_name = @g} : () -> () loc(\"krn\"(\"k.cpp\":9:2))\n\
             }) : () -> ()"
        in
        let g = List.hd (Core.module_block m).Core.body in
        Alcotest.(check loc_t) "named loc parsed"
          (Loc.name ~child:(Loc.file ~file:"k.cpp" ~line:9 ~col:2) "krn")
          g.Core.loc);
    Alcotest.test_case "every constructor round-trips through loc(...)" `Quick
      (fun () ->
        List.iter
          (fun l ->
            let src =
              Printf.sprintf
                "builtin.module() ({\n\
                \  test.global() {sym_name = @g} : () -> () loc(%s)\n\
                 }) : () -> ()"
                (Loc.to_string l)
            in
            let m = Parser.parse_module src in
            let g = List.hd (Core.module_block m).Core.body in
            Alcotest.(check loc_t) (Loc.to_string l) l g.Core.loc;
            (* And the debuginfo print -> parse -> print fixpoint holds. *)
            match Difftest.check_roundtrip ~debuginfo:true m with
            | Ok () -> ()
            | Error f -> Alcotest.fail (Difftest.failure_to_string f))
          [
            Loc.unknown;
            Loc.file ~file:"a b\"c\\d.cpp" ~line:3 ~col:9;
            Loc.name "plain";
            Loc.name ~child:(Loc.file ~file:"x.cpp" ~line:1 ~col:1) "with child";
            Loc.CallSite
              {
                callee = Loc.name "callee";
                caller = Loc.file ~file:"host.cpp" ~line:12 ~col:4;
              };
            Loc.Fused
              [ Loc.file ~file:"a.cpp" ~line:1 ~col:1;
                Loc.file ~file:"b.cpp" ~line:2 ~col:2 ];
          ]);
    Alcotest.test_case "default printing never shows locations" `Quick (fun () ->
        let m, _ =
          parse_one_op
            "builtin.module() ({\n\
            \  test.global() {sym_name = @g} : () -> () loc(\"n\")\n\
             }) : () -> ()"
        in
        let s = Printer.to_string m in
        Alcotest.(check bool) "no loc( in default output" false
          (contains s "loc("));
    Alcotest.test_case "checked-in debuginfo golden round-trips byte-identically"
      `Quick (fun () ->
        Helpers.init ();
        let src =
          In_channel.with_open_text "../examples/matmul.loc.mlir"
            In_channel.input_all
        in
        let m = Parser.parse_module ~file:"../examples/matmul.loc.mlir" src in
        Alcotest.(check string) "print equals file" src
          (Printer.to_string ~debuginfo:true m);
        (* The kernel ops carry the generator's Name locations. *)
        let any_named = ref false in
        Core.walk m ~f:(fun op ->
            match op.Core.loc with
            | Loc.Name (_, Loc.File { file = "matmul.cpp"; _ }) ->
              any_named := true
            | _ -> ());
        Alcotest.(check bool) "named kernel locations present" true !any_named);
  ]

(* ------------------------------------------------------------------ *)
(* Builder defaults and clone                                          *)
(* ------------------------------------------------------------------ *)

let builder_cases =
  [
    Alcotest.test_case "builder stamps its default location" `Quick (fun () ->
        let stmt = Loc.name "stmt" in
        let m, _ =
          Helpers.with_func (fun b _ ->
              let before = A.const_index b 1 in
              Alcotest.(check loc_t) "unknown before set" Loc.unknown
                (Option.get (Core.defining_op before)).Core.loc;
              Builder.set_default_loc b stmt;
              let after = A.const_index b 2 in
              Alcotest.(check loc_t) "stamped" stmt
                (Option.get (Core.defining_op after)).Core.loc;
              Builder.with_loc b (Loc.name "inner") (fun () ->
                  let v = A.const_index b 3 in
                  Alcotest.(check loc_t) "scoped override" (Loc.name "inner")
                    (Option.get (Core.defining_op v)).Core.loc);
              let restored = A.const_index b 4 in
              Alcotest.(check loc_t) "with_loc restores" stmt
                (Option.get (Core.defining_op restored)).Core.loc)
        in
        Helpers.check_verifies m);
    Alcotest.test_case "scf region builders inherit the default" `Quick (fun () ->
        let stmt = Loc.name "loop-stmt" in
        let m, _ =
          Helpers.with_func (fun b _ ->
              Builder.set_default_loc b stmt;
              let zero = A.const_index b 0 in
              let four = A.const_index b 4 in
              let one = A.const_index b 1 in
              ignore
                (Dialects.Scf.for_ b ~lb:zero ~ub:four ~step:one (fun bb _ _ ->
                     ignore (A.const_index bb 7);
                     [])))
        in
        Core.walk m ~f:(fun op ->
            if op.Core.name = "scf.yield" || op.Core.name = "arith.constant"
            then
              Alcotest.(check loc_t) (op.Core.name ^ " inherited") stmt
                op.Core.loc);
        Helpers.check_verifies m);
    Alcotest.test_case "clone preserves locations" `Quick (fun () ->
        let l = Loc.file ~file:"c.cpp" ~line:5 ~col:6 in
        let op =
          Core.create_op "arith.constant" ~operands:[]
            ~result_types:[ Types.i64 ] ~attrs:[ ("value", Attr.Int 3) ] ~loc:l
        in
        let clone = Core.clone_op op in
        Alcotest.(check loc_t) "same loc" l clone.Core.loc);
  ]

(* ------------------------------------------------------------------ *)
(* Transform propagation                                               *)
(* ------------------------------------------------------------------ *)

let transform_cases =
  [
    Alcotest.test_case "inlining wraps locations in call sites" `Quick (fun () ->
        let m = Helpers.fresh_module () in
        ignore
          (Dialects.Func.func m "sq" ~args:[ Types.f32 ] ~results:[ Types.f32 ]
             (fun b vals ->
               Builder.set_default_loc b (Loc.name "sq-body");
               Dialects.Func.return b
                 [ A.mulf b (List.hd vals) (List.hd vals) ]));
        ignore
          (K.define m ~name:"k" ~dims:1 ~args:[ K.Acc (1, S.Write, Types.f32) ]
             (fun b ~item ~args ->
               let i = K.gid b item 0 in
               let x = A.sitofp b (A.index_cast b i Types.i64) Types.f32 in
               Builder.set_default_loc b (Loc.name "call-site");
               let y =
                 Dialects.Func.call1 b "sq" ~operands:[ x ] ~result:Types.f32
               in
               Builder.set_default_loc b Loc.unknown;
               K.acc_set b (List.hd args) [ i ] y));
        let stats = Pass.Stats.create () in
        Sycl_core.Inline.pass.Pass.run m stats;
        Helpers.check_verifies m;
        let k = Option.get (Core.lookup_func m "k") in
        let mulf = List.hd (Core.collect_named k "arith.mulf") in
        Alcotest.(check loc_t) "callee loc at caller loc"
          (Loc.CallSite
             { callee = Loc.name "sq-body"; caller = Loc.name "call-site" })
          mulf.Core.loc);
    Alcotest.test_case "kernel fusion fuses the kernels' locations" `Quick
      (fun () ->
        let m = Helpers.fresh_module () in
        Test_fusion.chain_program m;
        (Option.get (Core.lookup_func m "prod")).Core.loc <- Loc.name "prod-src";
        (Option.get (Core.lookup_func m "cons")).Core.loc <- Loc.name "cons-src";
        ignore
          (Pass.run_pipeline ~verify_each:true
             [ Sycl_core.Host_raising.pass; Sycl_core.Canonicalize.pass;
               Sycl_core.Cse.pass ]
             m);
        let stats = Pass.Stats.create () in
        Sycl_core.Kernel_fusion.pass.Pass.run m stats;
        Alcotest.(check int) "fused once" 1 (Pass.Stats.get stats "fusion.fused");
        let fused =
          List.find
            (fun op ->
              op.Core.name = "func.func"
              && Core.has_attr op "sycl.kernel"
              && Core.func_sym op <> "prod" && Core.func_sym op <> "cons")
            (Core.module_block m).Core.body
        in
        Alcotest.(check loc_t) "fused location of both kernels"
          (Loc.fused [ Loc.name "prod-src"; Loc.name "cons-src" ])
          fused.Core.loc);
  ]

(* ------------------------------------------------------------------ *)
(* Diagnostics: remarks, verifier, races                               *)
(* ------------------------------------------------------------------ *)

let diagnostics_cases =
  [
    Alcotest.test_case "remarks render the anchor op's position" `Quick
      (fun () ->
        Helpers.init ();
        let op =
          Core.create_op "arith.addi" ~operands:[] ~result_types:[]
            ~loc:(Loc.file ~file:"mm.cpp" ~line:42 ~col:7)
        in
        let got = ref [] in
        Remarks.with_sink
          (fun r -> got := r :: !got)
          (fun () ->
            Remarks.emit ~pass:"licm" ~name:"hoisted" Remarks.Passed ~op
              "hoisted out of the loop");
        let r = List.hd !got in
        Alcotest.(check loc_t) "loc captured"
          (Loc.file ~file:"mm.cpp" ~line:42 ~col:7)
          r.Remarks.r_loc;
        Alcotest.(check bool) "file:line:col prefix" true
          (contains (Remarks.to_string r) "mm.cpp:42:7:"));
    Alcotest.test_case "full pipeline emits located remarks for parsed IR"
      `Quick (fun () ->
        Helpers.init ();
        let src =
          In_channel.with_open_text "../examples/matmul.mlir"
            In_channel.input_all
        in
        let m = Parser.parse_module ~file:"matmul.mlir" src in
        let located = ref 0 in
        let cfg = Sycl_core.Driver.config Sycl_core.Driver.Sycl_mlir in
        let passes =
          Sycl_core.Driver.host_pipeline cfg
          @ Sycl_core.Driver.device_pipeline cfg
        in
        ignore
          (Pass.run_pipeline ~verify_each:false
             ~remarks_sink:(fun r ->
               if contains (Remarks.to_string r) "matmul.mlir:" then
                 incr located)
             passes m);
        Alcotest.(check bool) "located remarks emitted" true (!located > 0));
    Alcotest.test_case "verifier names function, path and location" `Quick
      (fun () ->
        let m, f = Helpers.with_func ~name:"broken" (fun _ _ -> ()) in
        let body = Core.func_body f in
        let y_op =
          Core.create_op "arith.constant" ~operands:[]
            ~result_types:[ Types.i64 ] ~attrs:[ ("value", Attr.Int 1) ]
        in
        let x_op =
          Core.create_op "arith.addi"
            ~operands:[ Core.result y_op 0; Core.result y_op 0 ]
            ~result_types:[ Types.i64 ]
            ~loc:(Loc.file ~file:"use.cpp" ~line:3 ~col:14)
        in
        Core.prepend_op body x_op;
        Core.insert_after ~anchor:x_op y_op;
        match Verifier.verify m with
        | Ok () -> Alcotest.fail "expected a diagnostic"
        | Error (d :: _) ->
          let s = Verifier.diag_to_string d in
          Alcotest.(check bool) "file:line:col prefix" true
            (contains s "use.cpp:3:14:");
          Alcotest.(check bool) "names the function" true
            (contains s "@broken");
          Alcotest.(check bool) "op path" true (contains s "arith.addi#0")
        | Error [] -> Alcotest.fail "empty diagnostics");
    Alcotest.test_case "verifier context survives an unknown location" `Quick
      (fun () ->
        let m, f = Helpers.with_func ~name:"anon" (fun _ _ -> ()) in
        let body = Core.func_body f in
        (* Same dominance violation as above, but with no location. *)
        let y_op =
          Core.create_op "arith.constant" ~operands:[]
            ~result_types:[ Types.i64 ] ~attrs:[ ("value", Attr.Int 1) ]
        in
        let bad =
          Core.create_op "arith.addi"
            ~operands:[ Core.result y_op 0; Core.result y_op 0 ]
            ~result_types:[ Types.i64 ]
        in
        Core.prepend_op body bad;
        Core.insert_after ~anchor:bad y_op;
        match Verifier.verify m with
        | Ok () -> Alcotest.fail "expected a diagnostic"
        | Error (d :: _) ->
          let s = Verifier.diag_to_string d in
          Alcotest.(check loc_t) "no location" Loc.unknown d.Verifier.d_loc;
          Alcotest.(check bool) "function still named" true
            (contains s "@anon");
          Alcotest.(check bool) "path still present" true
            (contains s "arith.addi#0")
        | Error [] -> Alcotest.fail "empty diagnostics");
    Alcotest.test_case "race report points at the culprit store" `Quick
      (fun () ->
        let m = Helpers.fresh_module () in
        let k =
          K.define m ~name:"racy" ~dims:1
            ~args:[ K.Acc (1, S.Write, Types.f32) ]
            (fun b ~item ~args ->
              let out = List.hd args in
              let _i = K.gid b item 0 in
              Builder.set_default_loc b
                (Loc.file ~file:"racy.cpp" ~line:21 ~col:9);
              K.acc_set b out [ A.const_index b 0 ] (K.fconst b 1.0))
        in
        let c = Memory.alloc ~label:"out" ~size:32 () in
        let acc =
          Interp.Acc
            { Interp.a_alloc = c; a_range = [| 32 |]; a_mem_range = [| 32 |];
              a_offset = [| 0 |]; a_is_float = true }
        in
        match
          Interp.launch ~check_races:true ~module_op:m ~kernel:k
            ~args:[| Interp.Item; acc |] ~global:[ 32 ] ~wg_size:[ 16 ] ()
        with
        | _ -> Alcotest.fail "expected Race_detected"
        | exception Interp.Race_detected races ->
          let r = List.hd races in
          Alcotest.(check loc_t) "store location recorded"
            (Loc.file ~file:"racy.cpp" ~line:21 ~col:9)
            r.Interp.r_loc;
          Alcotest.(check bool) "report renders it" true
            (contains (Interp.describe_race r) "racy.cpp:21:9"));
  ]

(* ------------------------------------------------------------------ *)
(* Location-coverage instrumentation                                   *)
(* ------------------------------------------------------------------ *)

let coverage_cases =
  [
    Alcotest.test_case "count_locs counts known-location ops" `Quick (fun () ->
        let m, _ =
          Helpers.with_func (fun b _ ->
              ignore (A.const_index b 1);
              Builder.set_default_loc b (Loc.name "s");
              ignore (A.const_index b 2))
        in
        let known, total = Instrument.count_locs m in
        (* module + func + return + two constants; the second constant and
           the return (inserted after set_default_loc) are located. *)
        Alcotest.(check int) "total" 5 total;
        Alcotest.(check int) "known" 2 known);
    Alcotest.test_case "coverage log flags location loss" `Quick (fun () ->
        let m, _ = Helpers.with_func (fun _ _ -> ()) in
        Core.walk m ~f:(fun op -> op.Core.loc <- Loc.name "seed");
        let loser =
          Pass.make "loser" (fun m' _ ->
              let f = List.hd (Core.module_block m').Core.body in
              Core.prepend_op (Core.func_body f)
                (Core.create_op "arith.constant" ~operands:[]
                   ~result_types:[ Types.i64 ] ~attrs:[ ("value", Attr.Int 0) ]))
        in
        let keeper = Pass.make "keeper" (fun _ _ -> ()) in
        let lc = Instrument.loc_coverage_log () in
        ignore
          (Pass.run_pipeline ~verify_each:false
             ~instrumentations:[ Instrument.loc_coverage lc ]
             [ keeper; loser ] m);
        match Instrument.loc_coverage_entries lc with
        | [ k; l ] ->
          Alcotest.(check string) "first entry" "keeper" k.Instrument.lc_pass;
          Alcotest.(check bool) "keeper keeps" false
            (Instrument.loc_coverage_lost k);
          Alcotest.(check string) "second entry" "loser" l.Instrument.lc_pass;
          Alcotest.(check bool) "loser flagged" true
            (Instrument.loc_coverage_lost l);
          Alcotest.(check int) "one more op" (k.Instrument.lc_after_total + 1)
            l.Instrument.lc_after_total
        | es ->
          Alcotest.failf "expected 2 coverage entries, got %d" (List.length es));
  ]

let tests =
  ( "loc",
    constructor_cases @ parser_cases @ builder_cases @ transform_cases
    @ diagnostics_cases @ coverage_cases )
