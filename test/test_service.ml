(* The compile service (lib/service): content-addressed caching,
   coalescing, LRU eviction, multi-domain safety of the id mint and the
   op registry, and exactly-once remark delivery.

   This suite runs LAST: creating a service freezes the op registry, and
   the freeze-semantics test registers on purpose. *)

open Mlir
module Service = Sycl_service.Service
module Metrics = Sycl_obs.Metrics
module Driver = Sycl_core.Driver

(* A tiny module whose canonical text differs per [k] (the constant's
   value is an attribute, so changing it must change the cache key). *)
let module_text k =
  Printf.sprintf
    "builtin.module() ({\n\
    \  func.func() ({\n\
    \    %%0 = arith.constant() {value = %d} : () -> (i32)\n\
    \    func.return()\n\
    \  }) {function_type = () -> (), sym_name = \"f%d\"}\n\
     })\n"
    k k

(* Same module as [module_text k], different formatting: explicit empty
   block header, extra indentation and blank lines. Canonicalization
   (parse + reprint) must erase the difference. *)
let module_text_reformatted k =
  Printf.sprintf
    "builtin.module() ({\n\n\
    \    func.func() ({\n\
    \    ^bb0():\n\
    \        %%0 = arith.constant() {value = %d} : () -> (i32)\n\n\
    \        func.return()\n\
    \    }) {function_type = () -> (), sym_name = \"f%d\"}\n\n\
     })\n"
    k k

let pipeline () = [ Sycl_core.Canonicalize.pass ]

let make_service ?(capacity = 64) ?(workers = 4) () =
  Helpers.init ();
  let pipeline = pipeline () in
  Service.create ~cache_capacity:capacity ~workers ~pipeline
    ~pipeline_key:(Service.pipeline_key_of_passes pipeline) ()

let rq ?(name = "m") k = { Service.rq_name = name; rq_text = module_text k }
let counter s n = Metrics.counter_value (Service.metrics s) n

let success (rs : Service.response) =
  match rs.Service.rs_outcome with
  | Service.Success s -> s
  | Service.Failure msg -> Alcotest.failf "%s failed: %s" rs.Service.rs_name msg

let tests_list =
  [
    Alcotest.test_case "op ids stay distinct across domains" `Quick (fun () ->
        (* Regression: the id mint was a plain ref; two domains could
           read the same counter value and mint duplicate oids/vids. *)
        let per_domain = 5000 in
        let spawned =
          Array.init 4 (fun _ ->
              Domain.spawn (fun () ->
                  List.init per_domain (fun _ -> Core.next_id ())))
        in
        let all = List.concat_map Domain.join (Array.to_list spawned) in
        let distinct = List.sort_uniq compare all in
        Alcotest.(check int) "no duplicate ids" (4 * per_domain)
          (List.length distinct));
    Alcotest.test_case "creating a service freezes the op registry" `Quick
      (fun () ->
        let _s = make_service () in
        Alcotest.(check bool) "frozen" true (Op_registry.is_frozen ());
        (* Dialect init functions are idempotent and must stay callable. *)
        Helpers.init ();
        Alcotest.(check bool) "known op still registered" true
          (Op_registry.is_registered "arith.constant");
        (* A brand-new name is a programming error once workers exist. *)
        match Op_registry.register_pure "test.post_freeze_op" with
        | () -> Alcotest.fail "expected Invalid_argument for a new name"
        | exception Invalid_argument _ -> ());
    Alcotest.test_case "identical in-flight requests coalesce to one compile"
      `Quick (fun () ->
        let s = make_service () in
        let reqs = List.init 8 (fun i -> rq ~name:(Printf.sprintf "r%d" i) 1) in
        let responses = Service.run_batch s reqs in
        let outputs = List.map success responses in
        Alcotest.(check int) "misses" 1 (counter s "service.cache_misses");
        Alcotest.(check int) "hits" 7 (counter s "service.cache_hits");
        Alcotest.(check int) "requests" 8 (counter s "service.requests");
        Alcotest.(check int) "one cached entry" 1 (Service.cache_length s);
        match outputs with
        | first :: rest ->
          List.iter
            (fun o -> Alcotest.(check string) "identical output" first o)
            rest
        | [] -> Alcotest.fail "no responses");
    Alcotest.test_case
      "byte-identical and reformatted text hit; attribute change misses"
      `Quick (fun () ->
        let s = make_service () in
        let r1 = Service.compile_one s (rq 1) in
        Alcotest.(check bool) "cold" false r1.Service.rs_cache_hit;
        let r2 = Service.compile_one s (rq 1) in
        Alcotest.(check bool) "byte-identical hits" true r2.Service.rs_cache_hit;
        let r3 =
          Service.compile_one s
            { Service.rq_name = "m'"; rq_text = module_text_reformatted 1 }
        in
        Alcotest.(check bool) "reformatted text hits" true
          r3.Service.rs_cache_hit;
        let r4 = Service.compile_one s (rq 2) in
        Alcotest.(check bool) "changed attribute misses" false
          r4.Service.rs_cache_hit;
        Alcotest.(check string) "hit serves the cold output" (success r1)
          (success r2));
    Alcotest.test_case "pass list and driver config change the cache key"
      `Quick (fun () ->
        Helpers.init ();
        let text = module_text 1 in
        let m = Mlir.Parser.parse_module text in
        let canonical = Service.canonical_text m in
        let key pk = Service.cache_key ~pipeline_key:pk ~canonical_text:canonical in
        let k_canon =
          key (Service.pipeline_key_of_passes [ Sycl_core.Canonicalize.pass ])
        in
        let k_canon_cse =
          key
            (Service.pipeline_key_of_passes
               [ Sycl_core.Canonicalize.pass; Sycl_core.Cse.pass ])
        in
        Alcotest.(check bool) "pass list distinguishes" true
          (k_canon <> k_canon_cse);
        let cfg_default = Driver.config Driver.Sycl_mlir in
        let cfg_no_licm = Driver.config ~enable_licm:false Driver.Sycl_mlir in
        let cfg_dpcpp = Driver.config Driver.Dpcpp in
        Alcotest.(check bool) "ablation flag distinguishes" true
          (key (Driver.config_key cfg_default)
          <> key (Driver.config_key cfg_no_licm));
        Alcotest.(check bool) "mode distinguishes" true
          (key (Driver.config_key cfg_default)
          <> key (Driver.config_key cfg_dpcpp));
        Alcotest.(check string) "key is deterministic"
          (key (Driver.config_key cfg_default))
          (key (Driver.config_key cfg_default)));
    Alcotest.test_case "LRU eviction respects capacity and recency" `Quick
      (fun () ->
        let s = make_service ~capacity:2 ~workers:1 () in
        ignore (Service.compile_one s (rq 1));
        ignore (Service.compile_one s (rq 2));
        Alcotest.(check int) "at capacity" 2 (Service.cache_length s);
        (* Touch 1 so 2 becomes the least recently used entry. *)
        Alcotest.(check bool) "1 still cached" true
          (Service.compile_one s (rq 1)).Service.rs_cache_hit;
        ignore (Service.compile_one s (rq 3));
        Alcotest.(check int) "bound holds" 2 (Service.cache_length s);
        Alcotest.(check bool) "recently-used entry survives" true
          (Service.compile_one s (rq 1)).Service.rs_cache_hit;
        Alcotest.(check bool) "LRU entry was evicted" false
          (Service.compile_one s (rq 2)).Service.rs_cache_hit;
        Alcotest.(check bool) "evictions counted" true
          (counter s "service.cache_evictions" >= 1);
        Alcotest.(check int) "bound still holds" 2 (Service.cache_length s));
    Alcotest.test_case "cached output is byte-identical to a cold compile"
      `Quick (fun () ->
        let s = make_service () in
        let cold = Service.compile_one s (rq 5) in
        let cached = Service.compile_one s (rq 5) in
        Alcotest.(check string) "same bytes" (success cold) (success cached);
        Alcotest.(check bool) "cold compile has a cost" true
          (cold.Service.rs_cost_units > 0);
        Alcotest.(check int) "hits are free" 0 cached.Service.rs_cost_units;
        (* And both match a direct pipeline run on the same text. *)
        let m = Mlir.Parser.parse_module (module_text 5) in
        ignore (Mlir.Pass.run_pipeline ~verify_each:false (pipeline ()) m);
        Alcotest.(check string) "matches direct compile"
          (Mlir.Printer.to_string m) (success cold));
    Alcotest.test_case "parse failures are reported, never cached" `Quick
      (fun () ->
        let s = make_service () in
        let bad = { Service.rq_name = "bad"; rq_text = "not mlir at all" } in
        let r = Service.compile_one s bad in
        (match r.Service.rs_outcome with
        | Service.Failure msg ->
          Alcotest.(check bool) "mentions parse" true
            (String.length msg >= 5 && String.sub msg 0 5 = "parse")
        | Service.Success _ -> Alcotest.fail "expected a parse failure");
        Alcotest.(check int) "nothing cached" 0 (Service.cache_length s);
        Alcotest.(check int) "error counted" 1 (counter s "service.errors");
        Alcotest.(check int) "no miss recorded" 0
          (counter s "service.cache_misses"));
    Alcotest.test_case
      "remarks arrive exactly once, in request order, and replay on hits"
      `Quick (fun () ->
        Helpers.init ();
        (* A synthetic pass emitting one remark per function, tagged with
           the function's name — so delivery order is observable. *)
        let noisy =
          Pass.make "noisy" (fun m _stats ->
              Core.walk m ~f:(fun o ->
                  if o.Core.name = "func.func" then
                    match Core.attr o "sym_name" with
                    | Some (Attr.String fn) ->
                      Remarks.emit ~pass:"noisy" ~name:"seen" Remarks.Passed
                        ("function " ^ fn)
                    | _ -> ()))
        in
        let pipeline = [ noisy ] in
        let s =
          Service.create ~cache_capacity:64 ~workers:4 ~pipeline
            ~pipeline_key:(Service.pipeline_key_of_passes pipeline) ()
        in
        let reqs = List.init 5 (fun i -> rq ~name:(string_of_int i) (i + 10)) in
        let expected =
          List.init 5 (fun i -> Printf.sprintf "function f%d" (i + 10))
        in
        let run () =
          let seen = ref [] in
          let responses =
            Remarks.with_sink
              (fun r -> seen := r.Remarks.r_message :: !seen)
              (fun () -> Service.run_batch s reqs)
          in
          (List.rev !seen, responses)
        in
        (* Cold round: every remark delivered once, in request order,
           even though worker domains started with no sink installed. *)
        let cold_msgs, cold_rs = run () in
        Alcotest.(check (list string)) "cold delivery" expected cold_msgs;
        List.iter
          (fun (rs : Service.response) ->
            Alcotest.(check int) "response carries its remark" 1
              (List.length rs.Service.rs_remarks))
          cold_rs;
        (* Cached round: the same remarks replay from the cache. *)
        let cached_msgs, cached_rs = run () in
        Alcotest.(check (list string)) "cached replay" expected cached_msgs;
        Alcotest.(check bool) "all hits" true
          (List.for_all
             (fun (rs : Service.response) -> rs.Service.rs_cache_hit)
             cached_rs));
    Alcotest.test_case "batch responses preserve request order" `Quick
      (fun () ->
        let s = make_service ~workers:4 () in
        let reqs =
          List.init 12 (fun i -> rq ~name:(Printf.sprintf "n%d" i) (i mod 3))
        in
        let responses = Service.run_batch s reqs in
        List.iteri
          (fun i (rs : Service.response) ->
            Alcotest.(check string) "order" (Printf.sprintf "n%d" i)
              rs.Service.rs_name)
          responses;
        (* 12 requests over 3 distinct modules: exactly 3 cold compiles,
           regardless of scheduling. *)
        Alcotest.(check int) "misses" 3 (counter s "service.cache_misses");
        Alcotest.(check int) "hits" 9 (counter s "service.cache_hits"));
  ]

let tests = ("service", tests_list)
