(* The benchmark-regression pipeline: JSON round-trip of reports, the
   comparator's regression/tolerance/missing-workload semantics, and one
   measured end-to-end snapshot. *)

module BR = Sycl_workloads.Bench_report
module W = Sycl_workloads

let metrics ?(cycles = 1000) ?(valid = true) ?(p99 = 800) () :
    BR.config_metrics =
  {
    BR.cm_cycles = cycles;
    cm_valid = valid;
    cm_device_cycles = cycles / 2;
    cm_transfer_cycles = cycles / 4;
    cm_kernel_launches = 1;
    cm_global_transactions = 64;
    cm_local_transactions = 8;
    cm_transfer_bytes_h2d = 4096;
    cm_transfer_bytes_d2h = 1024;
    cm_dag_wait_edges = 2;
    cm_launch_p50 = min 500 p99;
    cm_launch_p90 = min 700 p99;
    cm_launch_p99 = p99;
  }

let compile ?(ops_visited = 400) ?(rewrites = 20) ?(parse_ops = 120) () :
    BR.compile_metrics =
  {
    BR.co_parse_ops = parse_ops;
    co_parse_chars = parse_ops * 40;
    co_ops_visited = [ ("canonicalize", ops_visited); ("cse", 150) ];
    co_rewrites = [ ("canonicalize", rewrites) ];
    co_wall_us = 777;
  }

let cache ?(hit_rate = 0.75) () : BR.cache_metrics =
  {
    BR.ca_hits = 48;
    ca_misses = 16;
    ca_evictions = 4;
    ca_hit_rate = hit_rate;
    ca_reuse_p50 = 3;
    ca_reuse_p90 = 8;
    ca_reuse_p99 = 12;
  }

let entry ?(name = "w") ?(configs = []) ?(compile = compile ())
    ?(cache = cache ()) () : BR.entry =
  {
    BR.e_name = name;
    e_category = "single-kernel";
    e_problem_size = 256;
    e_configs =
      (if configs = [] then
         [ ("dpcpp", metrics ()); ("sycl-mlir", metrics ~cycles:900 ()) ]
       else configs);
    e_speedup = 1.11;
    e_pass_stats = [ ("licm/licm.hoisted-pure", 3) ];
    e_hotspots =
      [ { BR.h_line = "w.sycl.mlir:17"; h_cycles = 400; h_share = 0.8 };
        { BR.h_line = "w.sycl.mlir:12"; h_cycles = 100; h_share = 0.2 } ];
    e_compile = compile;
    e_cache = cache;
  }

let service ?(hit_rate = 0.5) ?(cost_p99 = 4000) () : BR.service_metrics =
  {
    BR.sv_requests = 20;
    sv_hits = 10;
    sv_misses = 10;
    sv_evictions = 0;
    sv_hit_rate = hit_rate;
    sv_cost_p50 = min 2000 cost_p99;
    sv_cost_p90 = min 3000 cost_p99;
    sv_cost_p99 = cost_p99;
    sv_wall_us = 12345;
    sv_modules_per_sec = 1620.5;
  }

let report ?(label = "base") ?(service = service ()) entries : BR.report =
  {
    BR.r_schema_version = BR.schema_version;
    r_label = label;
    r_entries = entries;
    r_service = service;
  }

let kinds issues = List.map (fun i -> i.BR.i_kind) issues

let tests_list =
  [
    Alcotest.test_case "JSON round-trip preserves the report" `Quick (fun () ->
        let r = report [ entry ~name:"a" (); entry ~name:"b" () ] in
        let r' = BR.of_json (BR.to_json r) in
        Alcotest.(check bool) "equal" true (r = r'));
    Alcotest.test_case "self-comparison is clean" `Quick (fun () ->
        let r = report [ entry () ] in
        Alcotest.(check int) "no issues" 0
          (List.length (BR.compare_reports ~baseline:r r)));
    Alcotest.test_case "cycle regression beyond tolerance flags" `Quick
      (fun () ->
        let base = report [ entry ~name:"w" () ] in
        let worse =
          report ~label:"new"
            [ entry ~name:"w"
                ~configs:
                  [ ("dpcpp", metrics ()); ("sycl-mlir", metrics ~cycles:1200 ()) ]
                () ]
        in
        match BR.compare_reports ~baseline:base worse with
        | [ i ] ->
          Alcotest.(check bool) "kind" true (i.BR.i_kind = BR.Cycle_regression);
          Alcotest.(check string) "config" "sycl-mlir" i.BR.i_config
        | issues -> Alcotest.failf "expected 1 issue, got %d" (List.length issues));
    Alcotest.test_case "tolerance boundary: exactly at budget passes" `Quick
      (fun () ->
        let base = report [ entry ~name:"w" () ] in
        let at_limit cycles =
          report
            [ entry ~name:"w"
                ~configs:
                  [ ("dpcpp", metrics ()); ("sycl-mlir", metrics ~cycles ()) ]
                () ]
        in
        (* baseline sycl-mlir is 900 cycles; 5% budget = 945. *)
        Alcotest.(check int) "945 passes" 0
          (List.length (BR.compare_reports ~baseline:base (at_limit 945)));
        Alcotest.(check int) "946 fails" 1
          (List.length (BR.compare_reports ~baseline:base (at_limit 946)));
        Alcotest.(check int) "wider tolerance admits it" 0
          (List.length
             (BR.compare_reports ~tolerance:0.10 ~baseline:base (at_limit 946))));
    Alcotest.test_case "validity regression flags" `Quick (fun () ->
        let base = report [ entry ~name:"w" () ] in
        let invalid =
          report
            [ entry ~name:"w"
                ~configs:
                  [ ("dpcpp", metrics ());
                    ("sycl-mlir", metrics ~cycles:900 ~valid:false ()) ]
                () ]
        in
        Alcotest.(check bool) "validity issue" true
          (List.mem BR.Validity_regression
             (kinds (BR.compare_reports ~baseline:base invalid))));
    Alcotest.test_case "missing workload and config flag" `Quick (fun () ->
        let base = report [ entry ~name:"kept" (); entry ~name:"dropped" () ] in
        let cur =
          report
            [ entry ~name:"kept" ~configs:[ ("dpcpp", metrics ()) ] () ]
        in
        let ks = kinds (BR.compare_reports ~baseline:base cur) in
        Alcotest.(check bool) "missing workload" true
          (List.mem BR.Missing_workload ks);
        Alcotest.(check bool) "missing config" true (List.mem BR.Missing_config ks));
    Alcotest.test_case "new workloads and improvements are fine" `Quick
      (fun () ->
        let base = report [ entry ~name:"w" () ] in
        let better =
          report
            [ entry ~name:"w"
                ~configs:
                  [ ("dpcpp", metrics ()); ("sycl-mlir", metrics ~cycles:500 ()) ]
                ();
              entry ~name:"extra" () ]
        in
        Alcotest.(check int) "no issues" 0
          (List.length (BR.compare_reports ~baseline:base better)));
    Alcotest.test_case "malformed input raises Report_error" `Quick (fun () ->
        let bad s =
          match BR.of_json s with
          | _ -> Alcotest.failf "expected Report_error for %s" s
          | exception BR.Report_error _ -> ()
        in
        bad "not json";
        bad "{\"schema_version\": 999, \"label\": \"x\", \"workloads\": []}";
        bad "{\"label\": \"x\", \"workloads\": []}";
        bad
          (Printf.sprintf
             "{\"schema_version\": %d, \"label\": \"x\", \"workloads\": \
              [{\"name\": 3}]}"
             BR.schema_version));
    Alcotest.test_case "injected percentile regression fails the gate" `Quick
      (fun () ->
        let base = report [ entry ~name:"w" () ] in
        let worse =
          report ~label:"new"
            [ entry ~name:"w"
                ~configs:
                  [ ("dpcpp", metrics ());
                    ("sycl-mlir", metrics ~cycles:900 ~p99:2000 ()) ]
                () ]
        in
        let issues = BR.compare_reports ~baseline:base worse in
        Alcotest.(check bool) "latency issue" true
          (List.mem BR.Latency_regression (kinds issues));
        Alcotest.(check bool) "no cycle issue" false
          (List.mem BR.Cycle_regression (kinds issues)));
    Alcotest.test_case "service compile-latency regression fails the gate"
      `Quick (fun () ->
        let base = report [ entry () ] in
        (* 5% budget over p99=4000 is 4200. *)
        let ok = report ~service:(service ~cost_p99:4200 ()) [ entry () ] in
        Alcotest.(check int) "at budget passes" 0
          (List.length (BR.compare_reports ~baseline:base ok));
        let worse = report ~service:(service ~cost_p99:4201 ()) [ entry () ] in
        let issues = BR.compare_reports ~baseline:base worse in
        Alcotest.(check bool) "compile-latency issue" true
          (List.mem BR.Compile_latency_regression (kinds issues));
        Alcotest.(check bool) "nothing else" true
          (List.for_all (fun k -> k = BR.Compile_latency_regression)
             (kinds issues)));
    Alcotest.test_case "service hit-rate regression fails the gate" `Quick
      (fun () ->
        let base = report [ entry () ] in
        (* 5% of 0.5 is 0.025: 0.475 passes, anything lower flags. *)
        let ok = report ~service:(service ~hit_rate:0.475 ()) [ entry () ] in
        Alcotest.(check int) "at budget passes" 0
          (List.length (BR.compare_reports ~baseline:base ok));
        let worse = report ~service:(service ~hit_rate:0.4 ()) [ entry () ] in
        Alcotest.(check bool) "hit-rate issue" true
          (List.mem BR.Hit_rate_regression
             (kinds (BR.compare_reports ~baseline:base worse))));
    Alcotest.test_case "workload data-cache hit-rate regression fails (v6)"
      `Quick (fun () ->
        let base = report [ entry ~name:"w" () ] in
        (* Baseline hit rate is 0.75; 5% of that is 0.0375, so 0.7125
           passes and anything lower flags against the workload. *)
        let at hr =
          report ~label:"new"
            [ entry ~name:"w" ~cache:(cache ~hit_rate:hr ()) () ]
        in
        Alcotest.(check int) "at budget passes" 0
          (List.length (BR.compare_reports ~baseline:base (at 0.7125)));
        (match BR.compare_reports ~baseline:base (at 0.6) with
        | [ i ] ->
          Alcotest.(check bool) "kind" true
            (i.BR.i_kind = BR.Hit_rate_regression);
          Alcotest.(check string) "workload" "w" i.BR.i_workload
        | issues ->
          Alcotest.failf "expected 1 issue, got %d" (List.length issues));
        Alcotest.(check int) "wider tolerance admits it" 0
          (List.length
             (BR.compare_reports ~tolerance:0.25 ~baseline:base (at 0.6))));
    Alcotest.test_case "compiler-speed regression fails the gate (v5)" `Quick
      (fun () ->
        let base = report [ entry ~name:"w" () ] in
        (* Baseline canonicalize ops_visited is 400; 5% budget = 420. *)
        let at n =
          report ~label:"new"
            [ entry ~name:"w" ~compile:(compile ~ops_visited:n ()) () ]
        in
        Alcotest.(check int) "at budget passes" 0
          (List.length (BR.compare_reports ~baseline:base (at 420)));
        let issues = BR.compare_reports ~baseline:base (at 421) in
        Alcotest.(check bool) "compiler-speed issue" true
          (List.mem BR.Compiler_speed_regression (kinds issues));
        Alcotest.(check bool) "nothing else" true
          (List.for_all (fun k -> k = BR.Compiler_speed_regression)
             (kinds issues)));
    Alcotest.test_case "parser counters are gated, wall time is not" `Quick
      (fun () ->
        let base = report [ entry ~name:"w" () ] in
        (* Wall time is "measured": a 100x change must not flag. *)
        let slow =
          report ~label:"new"
            [ entry ~name:"w"
                ~compile:{ (compile ()) with BR.co_wall_us = 77_700 }
                () ]
        in
        Alcotest.(check int) "wall time not gated" 0
          (List.length (BR.compare_reports ~baseline:base slow));
        let more_parse =
          report ~label:"new"
            [ entry ~name:"w" ~compile:(compile ~parse_ops:200 ()) () ]
        in
        Alcotest.(check bool) "parse ops gated" true
          (List.mem BR.Compiler_speed_regression
             (kinds (BR.compare_reports ~baseline:base more_parse)));
        (* A pass removed from the pipeline is not a regression. *)
        let removed =
          report ~label:"new"
            [ entry ~name:"w"
                ~compile:
                  { (compile ()) with
                    BR.co_ops_visited = [ ("cse", 150) ];
                    co_rewrites = [];
                  }
                () ]
        in
        Alcotest.(check int) "removed pass is fine" 0
          (List.length (BR.compare_reports ~baseline:base removed)));
    Alcotest.test_case "measured snapshot round-trips and self-compares clean"
      `Slow (fun () ->
        Helpers.init ();
        let r =
          BR.collect ~label:"test" [ W.Single_kernel.vec_add ~n:256 ]
        in
        let r' = BR.of_json (BR.to_json r) in
        Alcotest.(check bool) "round-trip equal" true (r = r');
        Alcotest.(check int) "self-compare clean" 0
          (List.length (BR.compare_reports ~baseline:r r'));
        Alcotest.(check bool) "has sycl-mlir config" true
          (List.for_all
             (fun (e : BR.entry) ->
               List.mem_assoc "sycl-mlir" e.BR.e_configs
               && List.mem_assoc "dpcpp" e.BR.e_configs)
             r.BR.r_entries);
        (* The v6 cache section conserves against the sycl-mlir config's
           transaction count: the cache run replays the same addresses. *)
        List.iter
          (fun (e : BR.entry) ->
            let m = List.assoc "sycl-mlir" e.BR.e_configs in
            Alcotest.(check int)
              ("cache conservation for " ^ e.BR.e_name)
              m.BR.cm_global_transactions
              (e.BR.e_cache.BR.ca_hits + e.BR.e_cache.BR.ca_misses))
          r.BR.r_entries;
        (* One workload swept twice: second round is all hits. *)
        let s = r.BR.r_service in
        Alcotest.(check int) "requests" 2 s.BR.sv_requests;
        Alcotest.(check int) "hits" 1 s.BR.sv_hits;
        Alcotest.(check int) "misses" 1 s.BR.sv_misses;
        Alcotest.(check (float 1e-9)) "hit rate" 0.5 s.BR.sv_hit_rate;
        Alcotest.(check bool) "cost percentiles populated" true
          (s.BR.sv_cost_p50 > 0 && s.BR.sv_cost_p99 >= s.BR.sv_cost_p50));
  ]

let tests = ("bench-report", tests_list)
