(* Corner-case coverage: f64 kernels, non-unit loop steps, dynamic memref
   dims in the interpreter, and parser error paths for SYCL types. *)

open Mlir
module A = Dialects.Arith
module K = Sycl_frontend.Kernel
module S = Sycl_core.Sycl_types
module Interp = Sycl_sim.Interp
module Memory = Sycl_sim.Memory

let tests_list =
  [
    Alcotest.test_case "f64 kernels execute" `Quick (fun () ->
        let m = Helpers.fresh_module () in
        let k =
          K.define m ~name:"d64" ~dims:1 ~args:[ K.Acc (1, S.Read_write, Types.f64) ]
            (fun b ~item ~args ->
              let a = List.hd args in
              let i = K.gid b item 0 in
              K.acc_update b a [ i ] (fun v ->
                  Dialects.Arith.mulf b v
                    (Dialects.Arith.const_float b ~ty:Types.f64 2.0)))
        in
        let data = Memory.alloc ~size:8 () in
        Array.iteri (fun i _ -> data.Memory.data.(i) <- Memory.F (float_of_int i))
          data.Memory.data;
        let desc =
          Interp.Acc
            { Interp.a_alloc = data; a_range = [| 8 |]; a_mem_range = [| 8 |];
              a_offset = [| 0 |]; a_is_float = true }
        in
        ignore
          (Interp.launch ~module_op:m ~kernel:k ~args:[| Interp.Item; desc |]
             ~global:[ 8 ] ~wg_size:[ 8 ] ());
        Alcotest.(check (float 1e-9)) "doubled" 6.0
          (Memory.cell_to_float data.Memory.data.(3)));
    Alcotest.test_case "non-unit loop steps interpret correctly" `Quick (fun () ->
        let m = Helpers.fresh_module () in
        let k =
          K.define m ~name:"step3" ~dims:1 ~args:[ K.Acc (1, S.Read_write, Types.f32) ]
            (fun b ~item ~args ->
              let a = List.hd args in
              let i = K.gid b item 0 in
              let lb = K.idx b 0 and ub = K.idx b 10 and st = K.idx b 3 in
              K.for_range b ~lb ~ub ~step:st (fun bb _k ->
                  K.acc_update bb a [ i ] (fun v -> K.addf bb v (K.fconst bb 1.0))))
        in
        let data = Memory.alloc ~size:4 () in
        let desc =
          Interp.Acc
            { Interp.a_alloc = data; a_range = [| 4 |]; a_mem_range = [| 4 |];
              a_offset = [| 0 |]; a_is_float = true }
        in
        ignore
          (Interp.launch ~module_op:m ~kernel:k ~args:[| Interp.Item; desc |]
             ~global:[ 4 ] ~wg_size:[ 4 ] ());
        (* iterations at 0,3,6,9 -> 4 increments *)
        Alcotest.(check (float 1e-6)) "four iterations" 4.0
          (Memory.cell_to_float data.Memory.data.(0)));
    Alcotest.test_case "memref.dim reads view dims at runtime" `Quick (fun () ->
        let m = Helpers.fresh_module () in
        let k =
          K.define m ~name:"dims" ~dims:1 ~args:[ K.Acc (1, S.Write, Types.f32) ]
            (fun b ~item ~args ->
              let out = List.hd args in
              let i = K.gid b item 0 in
              let t = Dialects.Memref.alloca b [ 5; 7 ] Types.f32 in
              let d1 = Dialects.Memref.dim b t 1 in
              K.acc_set b out [ i ]
                (A.sitofp b (A.index_cast b d1 Types.i64) Types.f32))
        in
        let data = Memory.alloc ~size:2 () in
        let desc =
          Interp.Acc
            { Interp.a_alloc = data; a_range = [| 2 |]; a_mem_range = [| 2 |];
              a_offset = [| 0 |]; a_is_float = true }
        in
        ignore
          (Interp.launch ~module_op:m ~kernel:k ~args:[| Interp.Item; desc |]
             ~global:[ 2 ] ~wg_size:[ 2 ] ());
        Alcotest.(check (float 1e-6)) "dim 1 is 7" 7.0
          (Memory.cell_to_float data.Memory.data.(0)));
    Alcotest.test_case "parser rejects malformed sycl types" `Quick (fun () ->
        Helpers.init ();
        List.iter
          (fun src ->
            match Parser.parse_string src with
            | _ -> Alcotest.failf "accepted %s" src
            | exception Parser.Parse_error _ -> ())
          [
            "f() ({ ^bb0(%a: !sycl.id): })";
            "f() ({ ^bb0(%a: !sycl.accessor<2>): })";
            "f() ({ ^bb0(%a: !sycl.accessor<2, f32, readonly>): })";
            "f() ({ ^bb0(%a: !sycl.nosuchtype<1>): })";
          ]);
    Alcotest.test_case "parser handles negative float attrs" `Quick (fun () ->
        Helpers.init ();
        let op =
          Parser.parse_string
            "%0 = arith.constant() {value = -3.0} : () -> (f32)"
        in
        Alcotest.(check bool) "is -3.0" true
          (Core.attr op "value" = Some (Attr.Float (-3.0)));
        (* Hex float literals (the old %h printing) must now be rejected
           rather than silently mis-lexed. *)
        match
          Parser.parse_string
            "%0 = arith.constant() {value = -0x1.8p+1} : () -> (f32)"
        with
        | _ -> Alcotest.fail "hex float literal was accepted"
        | exception Parser.Parse_error _ -> ());
    Alcotest.test_case "interpreter rejects unknown ops with a clear error" `Quick
      (fun () ->
        let m = Helpers.fresh_module () in
        let k =
          K.define m ~name:"bad" ~dims:1 ~args:[] (fun b ~item:_ ~args:_ ->
              ignore (Builder.op b "mystery.op" ~operands:[] ~result_types:[]))
        in
        Alcotest.(check bool) "raises Sim_error" true
          (match
             Interp.launch ~module_op:m ~kernel:k ~args:[| Interp.Item |]
               ~global:[ 1 ] ~wg_size:[ 1 ] ()
           with
          | _ -> false
          | exception Interp.Sim_error _ -> true));
    Alcotest.test_case "kernel argument count mismatch is detected" `Quick
      (fun () ->
        let m = Helpers.fresh_module () in
        let k =
          K.define m ~name:"needs_args" ~dims:1
            ~args:[ K.Acc (1, S.Read, Types.f32) ] (fun b ~item ~args ->
              let i = K.gid b item 0 in
              ignore (K.acc_get b (List.hd args) [ i ]))
        in
        Alcotest.(check bool) "raises Sim_error" true
          (match
             Interp.launch ~module_op:m ~kernel:k ~args:[| Interp.Item |]
               ~global:[ 4 ] ~wg_size:[ 4 ] ()
           with
          | _ -> false
          | exception Interp.Sim_error _ -> true));
  ]

let tests = ("corners", tests_list)
