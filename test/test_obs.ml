(* The observability subsystem: exact histogram percentiles (including
   bucket-boundary and overflow cases), registry merge semantics, sharded
   cross-domain determinism, and the merged compile/runtime/device trace
   (lane layout, monotonic timestamps, Chrome JSON shape). *)

open Sycl_workloads
module Metrics = Sycl_obs.Metrics
module Trace = Sycl_obs.Trace
module Json = Mlir.Json

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Histogram percentiles                                               *)
(* ------------------------------------------------------------------ *)

let test_hist_empty () =
  let r = Metrics.create () in
  Alcotest.(check (option int))
    "no such histogram" None
    (Metrics.percentile r "missing" 50.);
  Metrics.observe r "h" 7;
  (* a different metric stays independent *)
  Alcotest.(check (option int)) "other name" None (Metrics.percentile r "g" 50.)

let test_hist_single () =
  let r = Metrics.create () in
  Metrics.observe r "h" 42;
  List.iter
    (fun p ->
      Alcotest.(check (option int))
        (Printf.sprintf "p%.0f of single sample" p)
        (Some 42) (Metrics.percentile r "h" p))
    [ 1.; 50.; 90.; 99.; 100. ]

let test_hist_all_equal () =
  let r = Metrics.create () in
  for _ = 1 to 100 do
    Metrics.observe r "h" 5
  done;
  List.iter
    (fun p ->
      Alcotest.(check (option int))
        (Printf.sprintf "p%.0f all-equal" p)
        (Some 5) (Metrics.percentile r "h" p))
    [ 50.; 90.; 99. ]

(* Percentiles are exact (nearest-rank over the raw values), not bucket
   upper bounds: 1..100 must give p50=50, p90=90, p99=99 even though the
   display buckets are much coarser. *)
let test_hist_exact_rank () =
  let r = Metrics.create () in
  for v = 1 to 100 do
    Metrics.observe r "h" v
  done;
  Alcotest.(check (option int)) "p50" (Some 50) (Metrics.percentile r "h" 50.);
  Alcotest.(check (option int)) "p90" (Some 90) (Metrics.percentile r "h" 90.);
  Alcotest.(check (option int)) "p99" (Some 99) (Metrics.percentile r "h" 99.);
  Alcotest.(check (option int))
    "p100" (Some 100)
    (Metrics.percentile r "h" 100.);
  check_int "sample count" 100 (Metrics.hist_sample_count r "h")

(* Values on and beyond the last bucket bound land in the overflow
   bucket, yet percentiles stay exact. *)
let test_hist_overflow () =
  let r = Metrics.create () in
  let bounds = [| 10; 100 |] in
  Metrics.observe r ~bounds "h" 10;      (* on a bound *)
  Metrics.observe r ~bounds "h" 100;     (* on the last bound *)
  Metrics.observe r ~bounds "h" 1000;    (* overflow *)
  Metrics.observe r ~bounds "h" 5000;    (* overflow *)
  Alcotest.(check (option int)) "p50" (Some 100) (Metrics.percentile r "h" 50.);
  Alcotest.(check (option int))
    "p99 = max overflow value" (Some 5000)
    (Metrics.percentile r "h" 99.)

(* ------------------------------------------------------------------ *)
(* Registry merge semantics                                            *)
(* ------------------------------------------------------------------ *)

let test_merge_semantics () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.incr a ~by:3 "c";
  Metrics.incr b ~by:4 "c";
  Metrics.set_gauge a "g" 7;
  Metrics.set_gauge b "g" 5;
  Metrics.observe a "h" 1;
  Metrics.observe b "h" 99;
  Metrics.merge ~into:a b;
  check_int "counters sum" 7 (Metrics.counter_value a "c");
  Alcotest.(check (option int)) "gauges max" (Some 7) (Metrics.gauge_value a "g");
  check_int "histograms merge" 2 (Metrics.hist_sample_count a "h");
  Alcotest.(check (option int)) "merged p99" (Some 99)
    (Metrics.percentile a "h" 99.)

let test_merge_kind_mismatch () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.incr a "x";
  Metrics.set_gauge b "x" 1;
  check "kind mismatch raises" true
    (match Metrics.merge ~into:a b with
    | () -> false
    | exception Invalid_argument _ -> true)

(* Sharded collection merges in canonical shard order: however work is
   distributed over shards, the merged registry (and its JSON) is
   identical. *)
let test_sharded_canonical () =
  let fill order =
    let sh = Metrics.Sharded.create 4 in
    List.iter
      (fun i ->
        let r = Metrics.Sharded.shard sh i in
        Metrics.incr r ~by:(i + 1) "work";
        Metrics.observe r "lat" ((i + 1) * 10))
      order;
    Json.to_string (Metrics.to_json (Metrics.Sharded.merged sh))
  in
  let a = fill [ 0; 1; 2; 3 ] and b = fill [ 3; 1; 0; 2 ] in
  check "fill order is irrelevant" true (a = b);
  (* and distribution over shards is irrelevant too *)
  let one_shard =
    let sh = Metrics.Sharded.create 4 in
    let r = Metrics.Sharded.shard sh 2 in
    List.iter
      (fun i ->
        Metrics.incr r ~by:(i + 1) "work";
        Metrics.observe r "lat" ((i + 1) * 10))
      [ 0; 1; 2; 3 ];
    Json.to_string (Metrics.to_json (Metrics.Sharded.merged sh))
  in
  check "distribution is irrelevant" true (a = one_shard)

(* ------------------------------------------------------------------ *)
(* Cross-domain metrics determinism                                    *)
(* ------------------------------------------------------------------ *)

(* The full runtime metrics registry — counters, transfer bytes, launch
   latency percentiles — must be byte-identical under the sequential and
   the 4-domain parallel simulator backends. *)
let run_metrics_json ~domains (w : Common.workload) =
  let m = w.Common.w_module () in
  let cfg = Sycl_core.Driver.config Sycl_core.Driver.Sycl_mlir in
  ignore (Sycl_core.Driver.compile cfg m);
  let args, validate = w.Common.w_data () in
  let r = Common.Host_interp.run ~sim_domains:domains ~module_op:m args in
  check "workload validates" true (validate ());
  Json.to_string (Metrics.to_json r.Common.Host_interp.metrics)

let test_domains_deterministic () =
  List.iter
    (fun w ->
      let seq = run_metrics_json ~domains:1 w in
      let par = run_metrics_json ~domains:4 w in
      check (w.Common.w_name ^ " metrics 1-vs-4 domains") true (seq = par))
    [ Single_kernel.vec_add ~n:256; Polybench.gemm ~n:16 ]

let test_runtime_metrics_present () =
  let w = Single_kernel.vec_add ~n:256 in
  let m = w.Common.w_module () in
  let cfg = Sycl_core.Driver.config Sycl_core.Driver.Sycl_mlir in
  ignore (Sycl_core.Driver.compile cfg m);
  let args, _ = w.Common.w_data () in
  let r = Common.Host_interp.run ~module_op:m args in
  let reg = r.Common.Host_interp.metrics in
  check "submits counted" true (Metrics.counter_value reg "runtime.submits" > 0);
  check "launches counted" true
    (Metrics.counter_value reg "runtime.kernel_launches" > 0);
  check "h2d bytes counted" true
    (Metrics.counter_value reg "runtime.transfer_bytes_h2d" > 0);
  check "launch latency observed" true
    (Metrics.hist_sample_count reg "runtime.launch_latency_cycles" > 0);
  check "latency percentile defined" true
    (Metrics.percentile reg "runtime.launch_latency_cycles" 99. <> None)

(* ------------------------------------------------------------------ *)
(* Merged trace                                                        *)
(* ------------------------------------------------------------------ *)

(* Compile with timing instrumentation, run, and merge both into one
   sink the way the CLI tools do: compile-phase spans land on the
   Compile lane, runtime events on the Host lane, kernel segments on the
   Device lane; runtime timestamps start after the compile spans. *)
let merged_sink () =
  let w = Single_kernel.vec_add ~n:256 in
  let m = w.Common.w_module () in
  let tm = Mlir.Instrument.timer () in
  let cfg = Sycl_core.Driver.config Sycl_core.Driver.Sycl_mlir in
  ignore
    (Sycl_core.Driver.compile
       ~instrumentations:[ Mlir.Instrument.timing tm ]
       cfg m);
  let args, _ = w.Common.w_data () in
  let r = Common.Host_interp.run ~module_op:m args in
  let sink = Trace.make_sink () in
  Trace.add_timing sink (Mlir.Instrument.timing_report tm);
  let compile_end = Trace.span_end sink in
  Trace.add_all sink
    (Sycl_sim.Profile.trace_spans ~base:compile_end
       r.Common.Host_interp.events);
  (sink, compile_end)

let test_trace_lanes () =
  let sink, compile_end = merged_sink () in
  let sps = Trace.spans sink in
  let on lane = List.filter (fun s -> s.Trace.sp_lane = lane) sps in
  check "compile spans present" true (on Trace.Compile <> []);
  check "host-runtime spans present" true (on Trace.Host <> []);
  check "device spans present" true (on Trace.Device <> []);
  (* lane/pid mapping *)
  check_int "compile pid" 1 (Trace.pid_of_lane Trace.Compile);
  check_int "host pid" 2 (Trace.pid_of_lane Trace.Host);
  check_int "device pid" 3 (Trace.pid_of_lane Trace.Device);
  (* device spans are the simulated kernels *)
  check "device spans are kernels" true
    (List.for_all (fun s -> s.Trace.sp_cat = "kernel") (on Trace.Device));
  (* runtime events begin after the compile timeline ends *)
  check "runtime after compile" true
    (List.for_all
       (fun s -> s.Trace.sp_ts >= compile_end)
       (on Trace.Host @ on Trace.Device))

let test_trace_monotonic () =
  let sink, _ = merged_sink () in
  let sps = Trace.spans sink in
  check "spans returned sorted by ts" true
    (let rec sorted = function
       | a :: (b :: _ as rest) -> a.Trace.sp_ts <= b.Trace.sp_ts && sorted rest
       | _ -> true
     in
     sorted sps);
  check "non-negative timestamps and durations" true
    (List.for_all (fun s -> s.Trace.sp_ts >= 0 && s.Trace.sp_dur >= 0) sps)

let test_trace_json_shape () =
  let sink, _ = merged_sink () in
  match Trace.export sink with
  | Json.Obj fields -> (
    match List.assoc_opt "traceEvents" fields with
    | Some (Json.List evs) ->
      let metas, events =
        List.partition
          (function
            | Json.Obj f -> List.assoc_opt "ph" f = Some (Json.String "M")
            | _ -> false)
          evs
      in
      (* three process_name metas (one per lane) plus thread metas *)
      check "at least three lane metas" true (List.length metas >= 3);
      check "every event is complete (ph=X)" true
        (List.for_all
           (function
             | Json.Obj f -> List.assoc_opt "ph" f = Some (Json.String "X")
             | _ -> false)
           events);
      check "events non-empty" true (events <> [])
    | _ -> Alcotest.fail "traceEvents missing")
  | _ -> Alcotest.fail "trace export is not an object"

let tests =
  ( "obs",
    [
      Alcotest.test_case "histogram: empty" `Quick test_hist_empty;
      Alcotest.test_case "histogram: single sample" `Quick test_hist_single;
      Alcotest.test_case "histogram: all equal" `Quick test_hist_all_equal;
      Alcotest.test_case "histogram: exact nearest-rank" `Quick
        test_hist_exact_rank;
      Alcotest.test_case "histogram: bounds and overflow" `Quick
        test_hist_overflow;
      Alcotest.test_case "merge: counter/gauge/hist semantics" `Quick
        test_merge_semantics;
      Alcotest.test_case "merge: kind mismatch rejected" `Quick
        test_merge_kind_mismatch;
      Alcotest.test_case "sharded: canonical merge" `Quick
        test_sharded_canonical;
      Alcotest.test_case "runtime metrics: 1-vs-4 domains identical" `Quick
        test_domains_deterministic;
      Alcotest.test_case "runtime metrics: event kinds present" `Quick
        test_runtime_metrics_present;
      Alcotest.test_case "merged trace: lanes and pids" `Quick
        test_trace_lanes;
      Alcotest.test_case "merged trace: monotonic timestamps" `Quick
        test_trace_monotonic;
      Alcotest.test_case "merged trace: Chrome JSON shape" `Quick
        test_trace_json_shape;
    ] )
