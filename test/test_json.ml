(* The shared JSON library: escaping correctness (valid pure-ASCII JSON
   for arbitrary byte strings), printer/parser round-trips, float
   fidelity, and parse-error reporting. *)

open Mlir

let json = Alcotest.testable (fun fmt j -> Format.pp_print_string fmt (Json.to_string j)) ( = )

let roundtrip name j =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.check json "pretty round-trips" j (Json.parse (Json.to_string j));
      Alcotest.check json "compact round-trips" j
        (Json.parse (Json.to_string ~compact:true j)))

let parse_fails name s =
  Alcotest.test_case name `Quick (fun () ->
      match Json.parse s with
      | _ -> Alcotest.failf "expected a parse error for %S" s
      | exception Json.Parse_error _ -> ())

let sample =
  Json.Obj
    [ ("name", Json.String "gemm");
      ("cycles", Json.Int 104864);
      ("speedup", Json.Float 1.25);
      ("valid", Json.Bool true);
      ("missing", Json.Null);
      ( "stats",
        Json.List [ Json.Int 0; Json.Int (-3); Json.Obj []; Json.List [] ] ) ]

let tests_list =
  [
    Alcotest.test_case "escaping emits pure-ASCII valid JSON" `Quick (fun () ->
        let nasty = "quote\" slash\\ nl\n tab\t cr\r ctl\x01 hi\xc3\xa9\xff" in
        let s = Json.to_string (Json.String nasty) in
        Alcotest.(check bool) "pure ASCII" true
          (String.for_all (fun c -> Char.code c >= 0x20 && Char.code c < 0x7f) s);
        Alcotest.(check bool)
          "control and non-ASCII bytes become \\u00XX" true
          (let has needle =
             let nl = String.length needle in
             let rec go i =
               i + nl <= String.length s
               && (String.sub s i nl = needle || go (i + 1))
             in
             go 0
           in
           has "\\u0001" && has "\\u00c3" && has "\\u00ff" && has "\\\""
           && has "\\\\" && has "\\n" && has "\\t" && has "\\r");
        Alcotest.check json "bytes survive the round-trip" (Json.String nasty)
          (Json.parse s));
    Alcotest.test_case "\\uXXXX above 0xff decodes as UTF-8" `Quick (fun () ->
        Alcotest.check json "euro sign" (Json.String "\xe2\x82\xac")
          (Json.parse "\"\\u20ac\""));
    Alcotest.test_case "floats print with a decimal marker and re-parse exactly"
      `Quick (fun () ->
        List.iter
          (fun f ->
            let s = Json.to_string (Json.Float f) in
            Alcotest.(check bool)
              (s ^ " has . or e") true
              (String.exists (fun c -> c = '.' || c = 'e') s);
            match Json.parse s with
            | Json.Float f' ->
              Alcotest.(check bool) (s ^ " exact") true (Float.equal f f')
            | _ -> Alcotest.failf "%s did not parse as a float" s)
          [ 0.1; 1.0; -3.5e300; 1e-7; 0.99740616417454986 ]);
    Alcotest.test_case "non-finite floats serialize as null" `Quick (fun () ->
        Alcotest.(check string) "nan" "null" (Json.to_string (Json.Float Float.nan));
        Alcotest.(check string) "inf" "null"
          (Json.to_string (Json.Float Float.infinity)));
    Alcotest.test_case "extreme ints round-trip" `Quick (fun () ->
        List.iter
          (fun i -> Alcotest.check json "int" (Json.Int i) (Json.parse (string_of_int i)))
          [ 0; max_int; min_int + 1; -1 ]);
    roundtrip "nested document round-trips" sample;
    roundtrip "empty containers" (Json.Obj [ ("a", Json.List []); ("b", Json.Obj []) ]);
    Alcotest.test_case "accessors" `Quick (fun () ->
        Alcotest.(check (option int)) "member int" (Some 104864)
          (Option.bind (Json.member "cycles" sample) Json.as_int);
        Alcotest.(check (option string)) "member string" (Some "gemm")
          (Option.bind (Json.member "name" sample) Json.as_string);
        Alcotest.(check (option bool)) "member bool" (Some true)
          (Option.bind (Json.member "valid" sample) Json.as_bool);
        Alcotest.(check (option (float 1e-9))) "int widens to float" (Some 104864.0)
          (Option.bind (Json.member "cycles" sample) Json.as_float);
        Alcotest.(check (option int)) "missing member" None
          (Option.bind (Json.member "nope" sample) Json.as_int));
    parse_fails "truncated object" "{\"a\": 1";
    parse_fails "trailing comma" "[1, 2,]";
    parse_fails "bare keyword" "tru";
    parse_fails "trailing garbage" "1 x";
    parse_fails "unterminated string" "\"abc";
    parse_fails "truncated unicode escape" "\"\\u12";
  ]

let tests = ("json", tests_list)
