(* Optimization remarks: pass-level emission (Passed/Missed with
   reasons), the collecting sink, and the JSON round-trip. *)

open Mlir
module A = Dialects.Arith
module K = Sycl_frontend.Kernel
module S = Sycl_core.Sycl_types
module Driver = Sycl_core.Driver

let find_remarks ~pass ~kind rs =
  List.filter
    (fun r -> r.Remarks.r_pass = pass && r.Remarks.r_kind = kind)
    rs

let contains ~needle hay =
  let nl = String.length needle in
  let rec go i =
    i + nl <= String.length hay
    && (String.sub hay i nl = needle || go (i + 1))
  in
  go 0

let tests_list =
  [
    Alcotest.test_case "licm reports the blocking alias reason" `Quick
      (fun () ->
        (* The known-blocked shape from the LICM tests: a[0] is read and
           must-alias-stored every iteration, so the load cannot hoist. *)
        let _m, f =
          Helpers.with_kernel ~dims:1
            ~args:[ K.Acc (1, S.Read_write, Types.f32); K.Scal Types.Index ]
            (fun b ~item:_ ~args ->
              match args with
              | [ a; n ] ->
                let zero = A.const_index b 0 in
                let one = A.const_index b 1 in
                let a0 = K.acc_view b a [ zero ] in
                ignore
                  (Dialects.Scf.for_ b ~lb:zero ~ub:n ~step:one (fun bb _iv _ ->
                       let v = Dialects.Memref.load bb a0 [ zero ] in
                       Dialects.Memref.store bb (A.addf bb v v) a0 [ zero ];
                       []))
              | _ -> assert false)
        in
        let (), rs =
          Remarks.collect (fun () ->
              Sycl_core.Licm.run_on_func f (Pass.Stats.create ()))
        in
        match find_remarks ~pass:"licm" ~kind:Remarks.Missed rs with
        | [] -> Alcotest.fail "expected a missed-optimization remark from licm"
        | r :: _ ->
          Alcotest.(check bool) "names the aliasing store" true
            (contains ~needle:"must-aliasing store" r.Remarks.r_message);
          Alcotest.(check string) "anchored to the load" "memref.load"
            r.Remarks.r_op;
          Alcotest.(check string) "in the kernel" "k" r.Remarks.r_func);
    Alcotest.test_case "full pipeline on gemm: internalization Passed" `Quick
      (fun () ->
        let w = Sycl_workloads.Polybench.gemm ~n:16 in
        let m = w.Sycl_workloads.Common.w_module () in
        let _c, rs =
          Remarks.collect (fun () ->
              Driver.compile (Driver.config Driver.Sycl_mlir) m)
        in
        Alcotest.(check bool) "loop-internalization passed remark" true
          (find_remarks ~pass:"loop-internalization" ~kind:Remarks.Passed rs
          <> []);
        Alcotest.(check bool) "reduction rewrite reported" true
          (find_remarks ~pass:"detect-reduction" ~kind:Remarks.Passed rs <> []);
        (* Every remark from the device passes names the kernel. *)
        List.iter
          (fun r -> Alcotest.(check string) "kernel name" "gemm" r.Remarks.r_func)
          (find_remarks ~pass:"loop-internalization" ~kind:Remarks.Passed rs));
    Alcotest.test_case "dpcpp baseline reports the missing alias info" `Quick
      (fun () ->
        let w = Sycl_workloads.Polybench.gemm ~n:16 in
        let m = w.Sycl_workloads.Common.w_module () in
        let _c, rs =
          Remarks.collect (fun () ->
              Driver.compile (Driver.config Driver.Dpcpp) m)
        in
        match find_remarks ~pass:"licm-pure" ~kind:Remarks.Missed rs with
        | [] -> Alcotest.fail "expected a missed remark from the baseline LICM"
        | r :: _ ->
          Alcotest.(check bool) "reason names the missing alias facts" true
            (contains ~needle:"aliasing facts" r.Remarks.r_message));
    Alcotest.test_case "no sink installed means emission is off" `Quick
      (fun () ->
        Alcotest.(check bool) "disabled outside collect" false
          (Remarks.enabled ());
        let (), rs = Remarks.collect (fun () -> ()) in
        Alcotest.(check int) "nothing collected" 0 (List.length rs));
    Alcotest.test_case "remark JSON round-trips" `Quick (fun () ->
        let rs =
          [
            { Remarks.r_pass = "licm"; r_name = "hoisted-mem";
              r_kind = Remarks.Passed; r_func = "k"; r_op = "memref.load";
              r_message = "hoisted \"guarded\" load\nsecond line \\ end";
              r_loc = Loc.file ~file:"mm.sycl \"q\".cpp" ~line:12 ~col:5 };
            { Remarks.r_pass = "kernel-fusion"; r_name = "not-fused";
              r_kind = Remarks.Missed; r_func = "main"; r_op = "";
              r_message = "a kernel contains a work-group barrier";
              r_loc =
                Loc.CallSite
                  { callee = Loc.Name ("k", Loc.Unknown);
                    caller = Loc.file ~file:"host.cpp" ~line:3 ~col:1 } };
            { Remarks.r_pass = "host-device-propagation";
              r_name = "noalias-pair"; r_kind = Remarks.Analysis;
              r_func = "gemm"; r_op = ""; r_message = "args 1 and 2 disjoint";
              r_loc = Loc.Unknown };
          ]
        in
        let parsed = Remarks.parse_json_remarks (Remarks.list_to_json rs) in
        Alcotest.(check int) "same count" (List.length rs) (List.length parsed);
        List.iter2
          (fun a b ->
            Alcotest.(check bool)
              ("round-trip of " ^ a.Remarks.r_name)
              true (a = b))
          rs parsed);
    Alcotest.test_case "collectors nest and outer sink still fires" `Quick
      (fun () ->
        let (((), inner), outer) =
          Remarks.collect (fun () ->
              Remarks.collect (fun () ->
                  Remarks.emit ~pass:"p" ~name:"n" Remarks.Passed ~func:"f"
                    "msg"))
        in
        Alcotest.(check int) "inner sees it" 1 (List.length inner);
        Alcotest.(check int) "outer sees it too" 1 (List.length outer));
    Alcotest.test_case "uninstall restores the outer sink" `Quick (fun () ->
        (* Regression: with a single global sink ref, a nested
           install/uninstall pair dropped the outer sink entirely. *)
        let outer = ref 0 and inner = ref 0 in
        Remarks.install (fun _ -> incr outer);
        Remarks.install (fun _ -> incr inner);
        Remarks.emit ~pass:"p" ~name:"n" Remarks.Passed ~func:"f" "nested";
        Remarks.uninstall ();
        Alcotest.(check bool) "outer still enabled" true (Remarks.enabled ());
        Remarks.emit ~pass:"p" ~name:"n" Remarks.Passed ~func:"f" "after";
        Remarks.uninstall ();
        Alcotest.(check bool) "all uninstalled" false (Remarks.enabled ());
        Alcotest.(check int) "inner saw only the nested emission" 1 !inner;
        Alcotest.(check int) "outer saw both" 2 !outer);
    Alcotest.test_case "nested pipeline keeps its own remark sink" `Quick
      (fun () ->
        (* A pass that itself runs a sub-pipeline with its own sink must
           not steal or drop the enclosing pipeline's sink. *)
        let m = Helpers.fresh_module () in
        let emit_pass tag =
          Pass.make ("emit-" ^ tag) (fun _ _ ->
              Remarks.emit ~pass:("emit-" ^ tag) ~name:"n" Remarks.Passed
                ~func:"f" tag)
        in
        let outer = ref [] and inner = ref [] in
        let nested =
          Pass.make "nested" (fun m _ ->
              ignore
                (Pass.run_pipeline ~verify_each:false
                   ~remarks_sink:(fun r -> inner := r :: !inner)
                   [ emit_pass "inner" ] m))
        in
        ignore
          (Pass.run_pipeline ~verify_each:false
             ~remarks_sink:(fun r -> outer := r :: !outer)
             [ emit_pass "before"; nested; emit_pass "after" ] m);
        Alcotest.(check int) "inner saw one remark" 1 (List.length !inner);
        Alcotest.(check int) "outer saw all three" 3 (List.length !outer);
        Alcotest.(check bool) "no sink left installed" false
          (Remarks.enabled ()));
  ]

let tests = ("remarks", tests_list)
