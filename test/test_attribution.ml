(* The source-attributed hotspot profiler: conservation against launch
   statistics, domain-count independence of every rendering, the golden
   matmul hotspot table, annotated-IR round-tripping and the
   Fused/CallSite join of the optimization-delta report. *)

open Mlir
open Sycl_workloads
module Attribution = Sycl_sim.Attribution
module H = Sycl_runtime.Host_interp

let matmul_text () =
  In_channel.with_open_text "../examples/matmul.mlir" In_channel.input_all

(* Parse the matmul example under its basename (the run_file convention),
   compile it with the default SYCL-MLIR pipeline and run it with
   synthesized size-16 arguments — exactly what
   `sycl-bench --file examples/matmul.mlir` does. *)
let run_matmul ?sim_domains ?cache_model () =
  Helpers.init ();
  let m = Parser.parse_module ~file:"matmul.mlir" (matmul_text ()) in
  ignore
    (Sycl_core.Driver.compile (Sycl_core.Driver.config Sycl_core.Driver.Sycl_mlir) m);
  let args = Annotate.synth_args m ~size:16 in
  (m, H.run ?sim_domains ?cache_model ~module_op:m args)

let merged r = Annotate.merged_attribution r

let tests_list =
  [
    Alcotest.test_case "matmul: attribution conserves launch stats exactly"
      `Quick (fun () ->
        let _, r = run_matmul () in
        (match Annotate.check_conservation r with
        | Ok () -> ()
        | Error msg -> Alcotest.failf "conservation violated: %s" msg);
        (* And the merged table's cycle total equals the summed per-launch
           work-group cycles. *)
        let total_stats =
          List.fold_left
            (fun acc (_, s) -> acc + s.Sycl_sim.Cost.total_wg_cycles)
            0 r.H.per_kernel
        in
        Alcotest.(check int) "total cycles" total_stats
          (Attribution.total_cycles (merged r)));
    Alcotest.test_case "matmul: >= 95%% of cycles land on known lines" `Quick
      (fun () ->
        let _, r = run_matmul () in
        let f = Attribution.known_cycle_fraction (merged r) in
        if f < 0.95 then
          Alcotest.failf "known-location fraction %.3f < 0.95" f);
    Alcotest.test_case "matmul: golden hotspot table" `Quick (fun () ->
        (* The golden table is generated under the direct-mapped cache
           model, so it pins the gated hit/miss/hitrate columns too. *)
        let _, r = run_matmul ~cache_model:Sycl_sim.Cost.Direct_mapped () in
        let golden =
          In_channel.with_open_text "../examples/matmul.hotspots.txt"
            In_channel.input_all
        in
        Alcotest.(check string) "hotspot report"
          golden
          (Attribution.hotspots_to_string (merged r)));
    Alcotest.test_case "matmul: 1-domain and 4-domain output byte-identical"
      `Quick (fun () ->
        let _, r1 = run_matmul ~sim_domains:1 () in
        let _, r4 = run_matmul ~sim_domains:4 () in
        let t1 = merged r1 and t4 = merged r4 in
        Alcotest.(check string) "canonical render" (Attribution.render t1)
          (Attribution.render t4);
        Alcotest.(check string) "JSON"
          (Json.to_string (Attribution.to_json t1))
          (Json.to_string (Attribution.to_json t4));
        Alcotest.(check string) "hotspot report"
          (Attribution.hotspots_to_string t1)
          (Attribution.hotspots_to_string t4));
    Alcotest.test_case "annotated IR round-trips and strips" `Quick (fun () ->
        let m, r = run_matmul () in
        Attribution.annotate_module (merged r) m;
        let text = Printer.to_string m in
        if not (Helpers.count_ops m "func.func" > 0) then
          Alcotest.fail "module lost its functions";
        (* The sycl.cycles attributes survive print -> parse -> verify and
           print back identically. *)
        let parsed = Parser.parse_module text in
        Helpers.check_verifies ~msg:"annotated module verifies" parsed;
        Alcotest.(check string) "fixpoint print" text (Printer.to_string parsed);
        let has_cycles op =
          Core.attr op Sycl_core.Analysis_printer.cycles_attr <> None
        in
        let any p m =
          let found = ref false in
          Core.walk m ~f:(fun op -> if p op then found := true);
          !found
        in
        Alcotest.(check bool) "annotations present" true (any has_cycles parsed);
        Sycl_core.Analysis_printer.strip_annotations parsed;
        Alcotest.(check bool) "annotations stripped" false
          (any has_cycles parsed));
    Alcotest.test_case "delta: Fused/CallSite constituents join the primary line"
      `Quick (fun () ->
        let before = Attribution.create () in
        let after = Attribution.create () in
        let f file line = Loc.file ~file ~line ~col:1 in
        (* Unoptimized: two separate source lines with costs. *)
        let b1 = Attribution.row before ~op_name:"memref.load" ~loc:(f "k.mlir" 4) in
        b1.Attribution.c_cycles <- 100;
        let b2 = Attribution.row before ~op_name:"memref.load" ~loc:(f "k.mlir" 9) in
        b2.Attribution.c_cycles <- 60;
        (* Optimized: line 9 survives only as a Fused constituent of the
           row primarily at line 4; a CallSite row inlined from line 20. *)
        let fused = Loc.fused [ f "k.mlir" 4; f "k.mlir" 9 ] in
        let a1 = Attribution.row after ~op_name:"memref.load" ~loc:fused in
        a1.Attribution.c_cycles <- 70;
        let cs = Loc.callsite ~callee:(f "k.mlir" 20) ~caller:(f "k.mlir" 4) in
        let a2 = Attribution.row after ~op_name:"arith.addf" ~loc:cs in
        a2.Attribution.c_cycles <- 10;
        let remark loc =
          { Remarks.r_pass = "licm"; r_name = "licm"; r_kind = Remarks.Passed;
            r_func = "k"; r_op = "memref.load";
            r_message = "hoisted"; r_loc = loc }
        in
        (* The remark is anchored at line 9 — which survived only inside
           the fused location — and must land on that row's primary line. *)
        let ds =
          Attribution.delta ~before ~after
            ~remarks:[ remark (f "k.mlir" 9) ]
        in
        let primary = Attribution.line_of_loc fused in
        let row =
          match
            List.find_opt (fun d -> d.Attribution.d_line = primary) ds
          with
          | Some d -> d
          | None -> Alcotest.failf "no delta row for %s" primary
        in
        Alcotest.(check int) "before (line 4's own cycles)" 100
          row.Attribution.d_before;
        Alcotest.(check int) "after" 70 row.Attribution.d_after;
        Alcotest.(check int) "remark joined through the fused loc" 1
          (List.length row.Attribution.d_remarks);
        (* The CallSite row reports under its callee line. *)
        let cs_primary = Attribution.line_of_loc cs in
        Alcotest.(check bool) "callsite row present" true
          (List.exists (fun d -> d.Attribution.d_line = cs_primary) ds);
        (* Rows sort by delta ascending: line 9 lost all 60 of its own
           cycles, the biggest saving, so it leads the report. *)
        (match ds with
        | first :: _ ->
          Alcotest.(check string) "largest saving first" "k.mlir:9"
            first.Attribution.d_line
        | [] -> Alcotest.fail "empty delta"));
    Alcotest.test_case "delta report: optimization shows on a remark line"
      `Quick (fun () ->
        Helpers.init ();
        let ds, remarks = Annotate.delta_report (Polybench.gemm ~n:16) in
        Alcotest.(check bool) "remarks collected" true (remarks <> []);
        Alcotest.(check bool)
          "some remark-bearing line saves cycles" true
          (List.exists
             (fun (d : Attribution.delta_row) ->
               d.Attribution.d_remarks <> []
               && d.Attribution.d_after - d.Attribution.d_before < 0)
             ds));
    Alcotest.test_case
      "barrier kernel: conservation holds and charges a barrier op" `Quick
      (fun () ->
        (* The internalized GEMM executes cooperative prefetches with
           work-group barriers — the barrier-round accounting must both
           conserve and attribute to the barrier op itself. *)
        Helpers.init ();
        let w = Annotate.located_workload (Polybench.gemm ~n:16) in
        let m = w.Common.w_module () in
        ignore
          (Sycl_core.Driver.compile
             (Sycl_core.Driver.config Sycl_core.Driver.Sycl_mlir) m);
        let args, _ = w.Common.w_data () in
        let r = H.run ~module_op:m args in
        (match Annotate.check_conservation r with
        | Ok () -> ()
        | Error msg -> Alcotest.failf "conservation violated: %s" msg);
        let barriers_run =
          List.fold_left (fun acc (_, s) -> acc + s.Sycl_sim.Cost.barriers) 0
            r.H.per_kernel
        in
        Alcotest.(check bool) "kernel hit barriers" true (barriers_run > 0);
        let tab = merged r in
        let barrier_rows =
          List.filter
            (fun ((k : Attribution.key), (c : Attribution.counts)) ->
              c.Attribution.c_barriers > 0
              && (k.Attribution.k_op = "gpu.barrier"
                 || k.Attribution.k_op = "sycl.group_barrier"))
            (Attribution.rows tab)
        in
        Alcotest.(check bool) "barrier rounds attributed to barrier ops" true
          (barrier_rows <> []));
    Alcotest.test_case "fuzzed workload: conservation oracle" `Quick (fun () ->
        Helpers.init ();
        let rng = Random.State.make [| 7; 21 |] in
        let w = Differential.random_workload rng in
        match Differential.check_attribution w with
        | Ok () -> ()
        | Error f -> Alcotest.fail f.Difftest.f_detail);
  ]

let tests = ("attribution", tests_list)
