(* Round-trip regression tests for the bugs fixed by the differential
   harness (ISSUE 2), property-style coverage of every Attr.t
   constructor, CFG/successor round-trips and the fixed-seed Irgen
   battery, plus the harness's own machinery (verify-each attribution
   and pass bisection). *)

open Mlir

(* Attribute carried through a full op print→parse cycle; checked both
   textually and structurally (Attr.equal is nan-safe). *)
let attr_case name a =
  Alcotest.test_case ("attr " ^ name) `Quick (fun () ->
      Helpers.init ();
      let op =
        Core.create_op "test.op" ~operands:[] ~result_types:[]
          ~attrs:[ ("value", a) ]
      in
      let s = Printer.to_string op in
      let op' = Parser.parse_string s in
      Alcotest.(check string) "textual fixpoint" s (Printer.to_string op');
      match Core.attr op' "value" with
      | Some a' ->
        Alcotest.(check bool) "structural equality" true (Attr.equal a a')
      | None -> Alcotest.fail "attr lost in round trip")

let parse_op_fails name src =
  Alcotest.test_case ("error: " ^ name) `Quick (fun () ->
      Helpers.init ();
      match Parser.parse_string src with
      | _ -> Alcotest.fail "expected a parse error"
      | exception Parser.Parse_error _ -> ())

let attr_cases =
  [
    attr_case "unit" Attr.Unit;
    attr_case "bool true" (Attr.Bool true);
    attr_case "bool false" (Attr.Bool false);
    attr_case "int" (Attr.Int 42);
    attr_case "int min" (Attr.Int min_int);
    attr_case "int max" (Attr.Int max_int);
    attr_case "float 1.2" (Attr.Float 1.2);
    attr_case "float 0.1" (Attr.Float 0.1);
    attr_case "float -0.0" (Attr.Float (-0.0));
    attr_case "float nan" (Attr.Float Float.nan);
    attr_case "float infinity" (Attr.Float Float.infinity);
    attr_case "float -infinity" (Attr.Float Float.neg_infinity);
    attr_case "float max_float" (Attr.Float Float.max_float);
    attr_case "float subnormal" (Attr.Float 4.9e-324);
    attr_case "float 17 digits" (Attr.Float 1.0000000000000002);
    attr_case "float whole" (Attr.Float 3.0);
    attr_case "string empty" (Attr.String "");
    attr_case "string plain" (Attr.String "hello world");
    attr_case "string quote" (Attr.String "a\"b");
    attr_case "string backslash" (Attr.String "a\\b");
    attr_case "string newline tab" (Attr.String "a\nb\tc");
    attr_case "string nul byte" (Attr.String "a\000b");
    attr_case "string carriage return" (Attr.String "a\rb");
    attr_case "string high bytes" (Attr.String "caf\xc3\xa9\xff");
    attr_case "string question mark" (Attr.String "what?no");
    attr_case "type scalar" (Attr.Type Types.i32);
    attr_case "type dynamic memref" (Attr.Type (Types.memref_dyn Types.f32));
    attr_case "type function" (Attr.Type (Types.Function ([ Types.i32 ], [])));
    attr_case "symbol" (Attr.Symbol "kernel0");
    attr_case "array nested"
      (Attr.Array
         [ Attr.Int 1; Attr.Array [ Attr.Float Float.nan; Attr.String "x" ];
           Attr.Unit ]);
    attr_case "dense_int" (Attr.Dense_int [| 1; -2; 3 |]);
    attr_case "dense_float specials"
      (Attr.Dense_float [| 1.5; Float.nan; Float.neg_infinity; -0.0; 0.1 |]);
    attr_case "affine_map"
      (Attr.Affine_map
         (Affine_expr.Map.make ~num_dims:2 ~num_syms:1
            [ Affine_expr.add (Affine_expr.dim 0) (Affine_expr.sym 0);
              Affine_expr.mul (Affine_expr.dim 1) (Affine_expr.const 4) ]));
  ]

let regression_cases =
  [
    (* The old %h printing emitted hex float literals; those must now be
       an explicit parse error, not silently mis-lexed. *)
    parse_op_fails "hex float literal"
      "%0 = arith.constant() {value = 0x1.8p+1} : () -> (f32)";
    parse_op_fails "negative hex float literal"
      "%0 = arith.constant() {value = -0x1.8p+1} : () -> (f32)";
    (* The old %S printing emitted decimal escapes like \123 which
       lex_string corrupted into the literal digits; unknown escapes are
       now rejected. *)
    parse_op_fails "decimal string escape"
      "test.op() {s = \"a\\123b\"}";
    parse_op_fails "unknown string escape"
      "test.op() {s = \"a\\qb\"}";
    parse_op_fails "truncated hex string escape"
      "test.op() {s = \"a\\x4\"}";
    Alcotest.test_case "hex string escape reads back" `Quick (fun () ->
        Helpers.init ();
        let op = Parser.parse_string "test.op() {s = \"a\\x00\\x7Fb\"}" in
        Alcotest.(check bool) "bytes" true
          (Core.attr op "s" = Some (Attr.String "a\000\127b")));
    (* '?' inside string literals used to be corrupted by the old
       dynamic-dim preprocessing pass over the raw source. *)
    Alcotest.test_case "question mark in string with dynamic memref" `Quick
      (fun () ->
        Helpers.init ();
        let op =
          Parser.parse_string
            "%0 = test.op() {s = \"really?\"} : () -> (memref<? x f32>)"
        in
        Alcotest.(check bool) "string intact" true
          (Core.attr op "s" = Some (Attr.String "really?"));
        let s = Printer.to_string op in
        Alcotest.(check string) "fixpoint" s
          (Printer.to_string (Parser.parse_string s)));
    (* -infinity and dense_f specials used to fail to re-parse. *)
    Alcotest.test_case "negative infinity parses" `Quick (fun () ->
        Helpers.init ();
        let op =
          Parser.parse_string
            "%0 = arith.constant() {value = -infinity} : () -> (f64)"
        in
        Alcotest.(check bool) "is -inf" true
          (Core.attr op "value" = Some (Attr.Float Float.neg_infinity)));
  ]

(* ------------------------------------------------------------------ *)
(* CFG / successor round-trips                                         *)
(* ------------------------------------------------------------------ *)

(* A func.func with a multi-block body: entry branches (conditionally)
   forward, a middle block loops back — exercising forward and backward
   successor references and block-argument headers. *)
let cfg_module () =
  let m = Helpers.fresh_module () in
  let body = Core.module_block m in
  let entry = Core.create_block () in
  let loop = Core.create_block ~args:[ Types.i32 ] () in
  let exit = Core.create_block () in
  let cond =
    Core.create_op "arith.constant" ~operands:[] ~result_types:[ Types.i1 ]
      ~attrs:[ ("value", Attr.Bool true) ]
  in
  Core.append_op entry cond;
  Core.append_op entry
    (Core.create_op "cf.cond_br"
       ~operands:[ Core.result cond 0 ]
       ~result_types:[] ~successors:[ loop; exit ]);
  Core.append_op loop
    (Core.create_op "cf.br" ~operands:[] ~result_types:[] ~successors:[ loop ]);
  Core.append_op exit
    (Core.create_op "func.return" ~operands:[] ~result_types:[]);
  let region = Core.create_region ~blocks:[ entry; loop; exit ] () in
  Core.append_op body
    (Core.create_op "func.func" ~operands:[] ~result_types:[]
       ~attrs:
         [ ("sym_name", Attr.String "cfg");
           ("function_type", Attr.Type (Types.Function ([], []))) ]
       ~regions:[ region ]);
  m

let cfg_cases =
  [
    Alcotest.test_case "multi-block CFG round-trips" `Quick (fun () ->
        let m = cfg_module () in
        let s = Printer.to_string m in
        let m' = Parser.parse_module s in
        Alcotest.(check string) "fixpoint" s (Printer.to_string m');
        (* And the parsed copy must satisfy the verifier's successor
           rules (terminator-only, same-region, block-ending). *)
        match Verifier.verify m' with
        | Ok () -> ()
        | Error ds ->
          Alcotest.failf "parsed CFG fails verification: %s"
            (String.concat "; " (List.map Verifier.diag_to_string ds)));
    Alcotest.test_case "argument-less successor target keeps its label" `Quick
      (fun () ->
        (* Regression: a single-block region whose block is a successor
           target must print a ^bb0 header or the branch cannot re-parse. *)
        Helpers.init ();
        let b = Core.create_block () in
        let op =
          Core.create_op "test.wrap" ~operands:[] ~result_types:[]
            ~regions:[ Core.create_region ~blocks:[ b ] () ]
        in
        Core.append_op b
          (Core.create_op "cf.br" ~operands:[] ~result_types:[]
             ~successors:[ b ]);
        let s = Printer.to_string op in
        Alcotest.(check bool) "header printed" true
          (String.length s > 0
          &&
          match String.index_opt s '^' with Some _ -> true | None -> false);
        Alcotest.(check string) "fixpoint" s
          (Printer.to_string (Parser.parse_string s)));
    parse_op_fails "undefined successor label"
      "test.wrap() ({ ^bb0(): cf.br()[^nowhere] })";
    parse_op_fails "duplicate block label"
      "test.wrap() ({ ^bb0(): test.op() ^bb0(): test.op() })";
    Alcotest.test_case "verifier rejects successors on non-terminators" `Quick
      (fun () ->
        let m = Helpers.fresh_module () in
        let body = Core.module_block m in
        let b = Core.create_block () in
        Core.append_op b
          (Core.create_op "test.notaterm" ~operands:[] ~result_types:[]
             ~successors:[ b ]);
        Core.append_op b
          (Core.create_op "scf.yield" ~operands:[] ~result_types:[]);
        Core.append_op body
          (Core.create_op "scf.execute_region" ~operands:[] ~result_types:[]
             ~regions:[ Core.create_region ~blocks:[ b ] () ]);
        match Verifier.verify m with
        | Ok () -> Alcotest.fail "expected a verifier diagnostic"
        | Error _ -> ());
    Alcotest.test_case "verifier rejects foreign-region successors" `Quick
      (fun () ->
        let m = Helpers.fresh_module () in
        let body = Core.module_block m in
        let mk_region term =
          let b = Core.create_block () in
          Core.append_op b term;
          (b, Core.create_region ~blocks:[ b ] ())
        in
        let b1, r1 =
          mk_region (Core.create_op "scf.yield" ~operands:[] ~result_types:[])
        in
        ignore b1;
        (* The branch in region 2 targets region 1's block. *)
        let _b2, r2 =
          mk_region
            (Core.create_op "cf.br" ~operands:[] ~result_types:[]
               ~successors:[ b1 ])
        in
        Core.append_op body
          (Core.create_op "scf.execute_region" ~operands:[] ~result_types:[]
             ~regions:[ r1; r2 ]);
        match Verifier.verify m with
        | Ok () -> Alcotest.fail "expected a verifier diagnostic"
        | Error _ -> ());
  ]

(* ------------------------------------------------------------------ *)
(* Fixed-seed Irgen battery                                            *)
(* ------------------------------------------------------------------ *)

let irgen_cases =
  [
    Alcotest.test_case "irgen battery (200 seeds)" `Quick (fun () ->
        Helpers.init ();
        for seed = 0 to 199 do
          let g = Irgen.create seed in
          match Difftest.check_roundtrip (Irgen.gen_module g) with
          | Ok () -> ()
          | Error f ->
            Alcotest.failf "seed %d: %s" seed (Difftest.failure_to_string f)
        done);
  ]

(* ------------------------------------------------------------------ *)
(* Harness machinery: verify-each attribution and pass bisection       *)
(* ------------------------------------------------------------------ *)

(* A pass that corrupts the module in a verifier-visible way: it gives a
   non-terminator op a block successor. *)
let breaker_pass =
  Pass.make "breaker" (fun m _ ->
      let body = Core.module_block m in
      match body.Core.body with
      | op :: _ -> Core.set_successors op [ body ]
      | [] -> ())

let nop_pass name = Pass.make name (fun _ _ -> ())

let simple_module () =
  let m = Helpers.fresh_module () in
  Core.append_op (Core.module_block m)
    (Core.create_op "test.op" ~operands:[] ~result_types:[]);
  m

let harness_cases =
  [
    Alcotest.test_case "verify-each attributes the offending pass" `Quick
      (fun () ->
        let passes = [ nop_pass "good-a"; breaker_pass; nop_pass "good-b" ] in
        match Difftest.check_pipeline_verified ~passes (simple_module ()) with
        | Ok () -> Alcotest.fail "expected a verify-each failure"
        | Error f ->
          Alcotest.(check string) "oracle" "verify-each" f.Difftest.f_oracle;
          let contains s sub =
            let n = String.length sub in
            let rec go i =
              i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
            in
            go 0
          in
          Alcotest.(check bool) "names breaker" true
            (contains f.Difftest.f_detail "breaker"));
    Alcotest.test_case "pass bisection names the first bad pass" `Quick
      (fun () ->
        let passes =
          [ nop_pass "good-a"; nop_pass "good-b"; breaker_pass;
            nop_pass "good-c" ]
        in
        let verdict =
          Difftest.bisect_passes ~passes ~fresh:simple_module
            ~check:(fun m -> Result.is_ok (Verifier.verify m))
            ()
        in
        Alcotest.(check (option string)) "first bad pass" (Some "breaker")
          verdict);
    Alcotest.test_case "bisection returns None on a clean pipeline" `Quick
      (fun () ->
        let passes = [ nop_pass "good-a"; nop_pass "good-b" ] in
        Alcotest.(check (option string)) "clean" None
          (Difftest.bisect_passes ~passes ~fresh:simple_module
             ~check:(fun m -> Result.is_ok (Verifier.verify m))
             ()));
    Alcotest.test_case "Instrument.verify_after reports into its sink" `Quick
      (fun () ->
        let hits = ref [] in
        let sink ~pass_name diags =
          hits := (pass_name, List.length diags) :: !hits
        in
        ignore
          (Pass.run_pipeline ~verify_each:false
             ~instrumentations:[ Instrument.verify_after ~sink () ]
             [ nop_pass "ok"; breaker_pass ]
             (simple_module ()));
        Alcotest.(check bool) "breaker reported" true
          (List.exists (fun (p, n) -> p = "breaker" && n > 0) !hits));
  ]

let tests =
  ( "roundtrip",
    attr_cases @ regression_cases @ cfg_cases @ irgen_cases @ harness_cases )
