(* Pass statistics: every optimization pass reports a meaningful nonzero
   counter on an example where it fires — small purpose-built modules for
   the scalar passes, real workloads for the SYCL-specific ones. *)

open Mlir
module A = Dialects.Arith
module SC = Sycl_core
module Driver = Sycl_core.Driver
module W = Sycl_workloads

let run_pass pass m =
  let r = Pass.run_pipeline ~verify_each:true [ pass ] m in
  Pass.merged_stats r

let check_nonzero stats key =
  Alcotest.(check bool)
    (Printf.sprintf "%s > 0 (got %d)" key (Pass.Stats.get stats key))
    true
    (Pass.Stats.get stats key > 0)

let tests_list =
  [
    Alcotest.test_case "canonicalize: pattern and total counters" `Quick
      (fun () ->
        let m, _f =
          Helpers.with_func ~args:[ Types.i32 ] ~results:[ Types.i32 ]
            (fun b vals ->
              match vals with
              | [ x ] -> Dialects.Func.return b [ A.subi b x x ]
              | _ -> assert false)
        in
        let st = run_pass SC.Canonicalize.pass m in
        check_nonzero st "canonicalize/rewrites";
        check_nonzero st "canonicalize/canonicalize.pattern.self-cancel");
    Alcotest.test_case "cse: eliminated and candidate counters" `Quick
      (fun () ->
        let m, _f =
          Helpers.with_func ~args:[ Types.i32; Types.i32 ] (fun b vals ->
              match vals with
              | [ x; y ] ->
                ignore (A.addi b x y);
                ignore (A.addi b x y)
              | _ -> assert false)
        in
        let st = run_pass SC.Cse.pass m in
        check_nonzero st "cse/cse.eliminated";
        check_nonzero st "cse/cse.candidates");
    Alcotest.test_case "dce: erased counter" `Quick (fun () ->
        let m, _f =
          Helpers.with_func ~args:[ Types.i32 ] (fun b vals ->
              match vals with
              | [ x ] -> ignore (A.addi b x x)
              | _ -> assert false)
        in
        let st = run_pass SC.Dce.pass m in
        check_nonzero st "dce/dce.erased");
    Alcotest.test_case "store-forwarding: forwarded and scanned counters"
      `Quick (fun () ->
        let m, _f =
          Helpers.with_func (fun b _ ->
              let mem = Dialects.Memref.alloca b [ 1 ] Types.f32 in
              let zero = A.const_index b 0 in
              let c = A.const_float b 2.5 in
              Dialects.Memref.store b c mem [ zero ];
              ignore (Dialects.Memref.load b mem [ zero ]))
        in
        let st = run_pass SC.Store_forwarding.pass m in
        check_nonzero st "store-forwarding/store-forwarding.forwarded";
        check_nonzero st "store-forwarding/store-forwarding.loads-scanned");
    Alcotest.test_case "inline: inlined and dead-helper counters" `Quick
      (fun () ->
        let m = Helpers.fresh_module () in
        ignore
          (Dialects.Func.func m "helper" ~args:[ Types.i32 ]
             ~results:[ Types.i32 ] (fun b vals ->
               match vals with
               | [ x ] -> Dialects.Func.return b [ A.addi b x x ]
               | _ -> assert false));
        ignore
          (Dialects.Func.func m "main" ~args:[ Types.i32 ]
             ~results:[ Types.i32 ] (fun b vals ->
               match vals with
               | [ x ] ->
                 let r =
                   Dialects.Func.call1 b "helper" ~operands:[ x ]
                     ~result:Types.i32
                 in
                 Dialects.Func.return b [ r ]
               | _ -> assert false));
        let st = run_pass SC.Inline.pass m in
        check_nonzero st "inline/inline.inlined";
        check_nonzero st "inline/inline.dead-functions-removed");
    Alcotest.test_case "loop-unroll: unrolled and rejection counters" `Quick
      (fun () ->
        let m, _f =
          Helpers.with_func ~args:[ Types.Index ] (fun b vals ->
              match vals with
              | [ n ] ->
                let lb = A.const_index b 0 in
                let ub = A.const_index b 4 in
                let step = A.const_index b 1 in
                ignore
                  (Dialects.Scf.for_ b ~lb ~ub ~step (fun bb iv _ ->
                       ignore (A.addi bb iv iv);
                       []));
                (* A second loop with a non-constant bound is rejected. *)
                ignore
                  (Dialects.Scf.for_ b ~lb ~ub:n ~step (fun bb iv _ ->
                       ignore (A.addi bb iv iv);
                       []))
              | _ -> assert false)
        in
        let st = run_pass SC.Loop_unroll.pass m in
        check_nonzero st "loop-unroll/unroll.unrolled";
        check_nonzero st "loop-unroll/unroll.rejected-non-constant");
    Alcotest.test_case "licm: hoisted-pure counter" `Quick (fun () ->
        let m, _f =
          Helpers.with_func ~args:[ Types.i32 ] (fun b vals ->
              match vals with
              | [ x ] ->
                let mem = Dialects.Memref.alloca b [ 1 ] Types.i32 in
                let zero = A.const_index b 0 in
                let lb = A.const_index b 0 in
                let ub = A.const_index b 8 in
                let step = A.const_index b 1 in
                ignore
                  (Dialects.Scf.for_ b ~lb ~ub ~step (fun bb _iv _ ->
                       let inv = A.addi bb x x in
                       Dialects.Memref.store bb inv mem [ zero ];
                       []))
              | _ -> assert false)
        in
        let st = run_pass SC.Licm.pass m in
        check_nonzero st "licm/licm.hoisted-pure");
    Alcotest.test_case
      "workload compile: reduction, internalization, host-device, dead-arg \
       counters"
      `Slow (fun () ->
        Helpers.init ();
        let measure name =
          match W.Suite.find name with
          | Some w -> W.Common.measure (Driver.config Driver.Sycl_mlir) w
          | None -> Alcotest.failf "workload %s not found" name
        in
        let lin = measure "LinearRegressionCoeff" in
        List.iter
          (check_nonzero lin.W.Common.m_stats)
          [ "detect-reduction/reduction.rewritten";
            "licm/licm.hoisted-pure";
            "sycl-dead-argument-elimination/dead-args.marked";
            "host-device-propagation/hostdev.capture-const";
            "host-raising/raising.raised";
            "cse/cse.eliminated";
            "canonicalize/rewrites" ];
        let km = measure "KMeans" in
        List.iter
          (check_nonzero km.W.Common.m_stats)
          [ "loop-internalization/internalization.prefetched";
            "host-device-propagation/hostdev.noalias-pair";
            "dce/dce.erased" ]);
    Alcotest.test_case "fusion compile: fusion and store-forwarding counters"
      `Quick (fun () ->
        Helpers.init ();
        let w = W.Extensions.elementwise_chain ~n:2048 in
        let m = w.W.Common.w_module () in
        let compiled =
          Driver.compile (Driver.config ~enable_fusion:true Driver.Sycl_mlir) m
        in
        let st = Pass.merged_stats compiled.Driver.pipeline_result in
        check_nonzero st "kernel-fusion/fusion.fused";
        check_nonzero st "store-forwarding/store-forwarding.forwarded");
  ]

let tests = ("pass-stats", tests_list)
