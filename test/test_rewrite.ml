(* Greedy rewriting, canonicalization, CSE and DCE tests. *)

open Mlir
module A = Dialects.Arith

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let run_pass pass m =
  let stats = Pass.Stats.create () in
  pass.Pass.run m stats;
  stats

(* A function whose body is a [depth]-deep chain of dead addi ops rooted
   at the argument: the tip is unused, so greedy DCE must cascade from
   the tip back — one op per re-walk sweep under the legacy driver. *)
let dead_chain_module depth =
  Helpers.with_func ~args:[ Types.i64 ] (fun b vals ->
      let x = List.hd vals in
      let rec grow v n = if n = 0 then () else grow (A.addi b v x) (n - 1) in
      grow x depth)

let tests_list =
  [
    Alcotest.test_case "constants fold through arithmetic chains" `Quick (fun () ->
        let m, f =
          Helpers.with_func ~results:[ Types.i64 ] (fun b _ ->
              let x = A.const_int b 6 in
              let y = A.const_int b 7 in
              let s = A.muli b x y in
              let t = A.addi b s (A.const_int b 8) in
              Dialects.Func.return b [ t ])
        in
        ignore (run_pass Sycl_core.Canonicalize.pass m);
        (* Everything folds to one constant feeding the return. *)
        let consts = Core.collect_named f "arith.constant" in
        check_int "muls gone" 0 (Helpers.count_ops f "arith.muli");
        check_bool "result constant is 50" true
          (List.exists (fun c -> Core.attr c "value" = Some (Attr.Int 50)) consts));
    Alcotest.test_case "dead pure ops erased" `Quick (fun () ->
        let m, f =
          Helpers.with_func (fun b _ ->
              let x = A.const_int b 1 in
              ignore (A.addi b x x))
        in
        ignore (run_pass Sycl_core.Dce.pass m);
        check_int "body only has return" 1 (List.length (Core.func_body f).Core.body));
    Alcotest.test_case "scf.if with constant condition inlines taken branch" `Quick
      (fun () ->
        let m, f =
          Helpers.with_func ~args:[ Types.memref_dyn Types.f32 ] (fun b vals ->
              let mem = List.hd vals in
              let c = A.const_bool b false in
              ignore
                (Dialects.Scf.if_ b c
                   ~then_:(fun bb ->
                     Dialects.Memref.store bb (A.const_float bb 1.0) mem
                       [ A.const_index bb 0 ];
                     [])
                   ~else_:(fun bb ->
                     Dialects.Memref.store bb (A.const_float bb 2.0) mem
                       [ A.const_index bb 0 ];
                     [])
                   ()))
        in
        ignore (run_pass Sycl_core.Canonicalize.pass m);
        check_int "if gone" 0 (Helpers.count_ops f "scf.if");
        let stores = Core.collect_named f "memref.store" in
        check_int "one store left" 1 (List.length stores);
        (* The else branch (2.0) was taken. *)
        let v, _, _ = Dialects.Memref.store_parts (List.hd stores) in
        check_bool "took else" true
          (Core.attr (Option.get (Core.defining_op v)) "value" = Some (Attr.Float 2.0)));
    Alcotest.test_case "zero-trip scf.for folds away" `Quick (fun () ->
        let m, f =
          Helpers.with_func ~args:[ Types.memref_dyn Types.f32 ] (fun b vals ->
              let mem = List.hd vals in
              let lb = A.const_index b 5 in
              let ub = A.const_index b 5 in
              let one = A.const_index b 1 in
              ignore
                (Dialects.Scf.for_ b ~lb ~ub ~step:one (fun bb iv _ ->
                     Dialects.Memref.store bb (A.const_float bb 1.0) mem [ iv ];
                     [])))
        in
        ignore (run_pass Sycl_core.Canonicalize.pass m);
        check_int "loop gone" 0 (Helpers.count_ops f "scf.for");
        check_int "store gone" 0 (Helpers.count_ops f "memref.store"));
    Alcotest.test_case "zero-trip loop with iter_args yields inits" `Quick (fun () ->
        let m, f =
          Helpers.with_func ~results:[ Types.f32 ] (fun b _ ->
              let lb = A.const_index b 3 in
              let ub = A.const_index b 1 in
              let one = A.const_index b 1 in
              let init = A.const_float b 9.0 in
              let loop =
                Dialects.Scf.for_ b ~lb ~ub ~step:one ~iter_args:[ init ]
                  (fun bb _ args -> [ A.addf bb (List.hd args) (List.hd args) ])
              in
              Dialects.Func.return b [ Core.result loop 0 ])
        in
        ignore (run_pass Sycl_core.Canonicalize.pass m);
        check_int "loop gone" 0 (Helpers.count_ops f "scf.for");
        let ret = List.hd (Core.collect_named f "func.return") in
        check_bool "returns the init constant" true
          (Core.attr (Option.get (Core.defining_op (Core.operand ret 0))) "value"
          = Some (Attr.Float 9.0)));
    Alcotest.test_case "CSE merges identical pure ops" `Quick (fun () ->
        let m, f =
          Helpers.with_func ~args:[ Types.i64 ] ~results:[ Types.i64 ] (fun b vals ->
              let x = List.hd vals in
              let a = A.addi b x x in
              let b2 = A.addi b x x in
              Dialects.Func.return b [ A.muli b a b2 ])
        in
        ignore (run_pass Sycl_core.Cse.pass m);
        check_int "one addi left" 1 (Helpers.count_ops f "arith.addi"));
    Alcotest.test_case "CSE respects result types" `Quick (fun () ->
        let m, f =
          Helpers.with_func ~results:[ Types.Index; Types.i32 ] (fun b _ ->
              let a = A.const_index b 0 in
              let b2 = A.const_int b ~ty:Types.i32 0 in
              Dialects.Func.return b [ a; b2 ])
        in
        ignore (run_pass Sycl_core.Cse.pass m);
        check_int "both constants kept" 2 (Helpers.count_ops f "arith.constant"));
    Alcotest.test_case "CSE works across region nesting (outer visible inside)" `Quick
      (fun () ->
        let m, f =
          Helpers.with_func ~args:[ Types.memref_dyn Types.f32 ] (fun b vals ->
              let mem = List.hd vals in
              let zero = A.const_index b 0 in
              let c = A.const_bool b true in
              ignore
                (Dialects.Scf.if_ b c
                   ~then_:(fun bb ->
                     let zero' = A.const_index bb 0 in
                     Dialects.Memref.store bb (A.const_float bb 1.0) mem [ zero' ];
                     [])
                   ());
              ignore zero)
        in
        ignore (run_pass Sycl_core.Cse.pass m);
        (* The inner index 0 merged with the outer one. *)
        let consts =
          List.filter
            (fun (o : Core.op) -> Core.attr o "value" = Some (Attr.Int 0))
            (Core.collect_named f "arith.constant")
        in
        check_int "one zero constant" 1 (List.length consts));
    Alcotest.test_case "CSE does not merge loads" `Quick (fun () ->
        let m, f =
          Helpers.with_func ~args:[ Types.memref_dyn Types.f32 ]
            ~results:[ Types.f32 ] (fun b vals ->
              let mem = List.hd vals in
              let zero = A.const_index b 0 in
              let a = Dialects.Memref.load b mem [ zero ] in
              Dialects.Memref.store b (A.const_float b 3.0) mem [ zero ];
              let c = Dialects.Memref.load b mem [ zero ] in
              Dialects.Func.return b [ A.addf b a c ])
        in
        ignore (run_pass Sycl_core.Cse.pass m);
        check_int "two loads kept" 2 (Helpers.count_ops f "memref.load"));
    Alcotest.test_case "dead alloca with only stores removed" `Quick (fun () ->
        let m, f =
          Helpers.with_func (fun b _ ->
              let mem = Dialects.Memref.alloca b [ 4 ] Types.f32 in
              Dialects.Memref.store b (A.const_float b 1.0) mem [ A.const_index b 0 ])
        in
        ignore (run_pass Sycl_core.Dce.pass m);
        check_int "alloca gone" 0 (Helpers.count_ops f "memref.alloca");
        check_int "store gone" 0 (Helpers.count_ops f "memref.store"));
    Alcotest.test_case "alloca with a load survives DCE when load is used" `Quick
      (fun () ->
        let m, f =
          Helpers.with_func ~results:[ Types.f32 ] (fun b _ ->
              let mem = Dialects.Memref.alloca b [ 4 ] Types.f32 in
              Dialects.Memref.store b (A.const_float b 1.0) mem [ A.const_index b 0 ];
              let v = Dialects.Memref.load b mem [ A.const_index b 0 ] in
              Dialects.Func.return b [ v ])
        in
        ignore (run_pass Sycl_core.Dce.pass m);
        check_int "alloca kept" 1 (Helpers.count_ops f "memref.alloca"));
    Alcotest.test_case "constant_of_value sees through defining constant" `Quick
      (fun () ->
        let _m, _f =
          Helpers.with_func (fun b _ ->
              let x = A.const_int b 5 in
              check_bool "constant recovered" true
                (Rewrite.constant_of_value x = Some (Attr.Int 5)))
        in
        ());
    Alcotest.test_case "canonicalize folds sitofp of folded index math" `Quick
      (fun () ->
        let m, f =
          Helpers.with_func ~results:[ Types.f32 ] (fun b _ ->
              let n = A.const_index b 64 in
              let cast = A.index_cast b n Types.i64 in
              Dialects.Func.return b [ A.sitofp b cast Types.f32 ])
        in
        ignore (run_pass Sycl_core.Canonicalize.pass m);
        check_int "no casts left" 0
          (Helpers.count_ops f "arith.index_cast" + Helpers.count_ops f "arith.sitofp");
        let ret = List.hd (Core.collect_named f "func.return") in
        check_bool "returns 64.0" true
          (Core.attr (Option.get (Core.defining_op (Core.operand ret 0))) "value"
          = Some (Attr.Float 64.0)));
    (* --- Worklist driver: the silent max_iterations=10 cutoff bug. ----- *)
    Alcotest.test_case "legacy driver silently stops before fixpoint on deep dead chains"
      `Quick (fun () ->
        (* A 40-deep dead addi chain: each sweep of the bounded re-walk
           driver erases only the unused tip, so 10 iterations leave 30
           dead ops behind — the seed bug. *)
        let m, f = dead_chain_module 40 in
        let st = Rewrite.apply_greedily_legacy m Sycl_core.Canonicalize.patterns in
        check_bool "legacy stopped before fixpoint" false st.Rewrite.rw_converged;
        check_int "one dead op erased per sweep" 10 st.Rewrite.rw_rewrites;
        check_int "dead ops left behind" 30 (Helpers.count_ops f "arith.addi"));
    Alcotest.test_case "worklist driver fully folds chains deeper than the old bound"
      `Quick (fun () ->
        let m, f = dead_chain_module 40 in
        let legacy_visits =
          let ml, _ = dead_chain_module 40 in
          (Rewrite.apply_greedily_legacy ml Sycl_core.Canonicalize.patterns)
            .Rewrite.rw_ops_visited
        in
        let st = Rewrite.apply_worklist m Sycl_core.Canonicalize.patterns in
        check_bool "true fixpoint" true st.Rewrite.rw_converged;
        check_int "whole chain erased" 40 st.Rewrite.rw_rewrites;
        check_int "no dead ops left" 0 (Helpers.count_ops f "arith.addi");
        (* Cost proportional to rewrites, not iterations x module size:
           on the chain that exposes the bug the worklist visits >= 3x
           fewer ops than the legacy re-walk. *)
        check_bool
          (Printf.sprintf ">=3x fewer visits (legacy %d, worklist %d)"
             legacy_visits st.Rewrite.rw_ops_visited)
          true
          (legacy_visits >= 3 * st.Rewrite.rw_ops_visited));
    Alcotest.test_case "canonicalize pass reaches fixpoint via the default driver"
      `Quick (fun () ->
        let m, f = dead_chain_module 40 in
        let stats = run_pass Sycl_core.Canonicalize.pass m in
        check_int "no dead ops left" 0 (Helpers.count_ops f "arith.addi");
        check_int "rewrites counted" 40 (Pass.Stats.get stats "rewrites");
        check_bool "ops-visited counter populated" true
          (Pass.Stats.get stats "canonicalize.ops_visited" > 0));
    Alcotest.test_case "worklist cap raises a loud diagnostic instead of stopping"
      `Quick (fun () ->
        let m, _f = dead_chain_module 12 in
        match Rewrite.apply_worklist ~cap:3 m Sycl_core.Canonicalize.patterns with
        | _ -> Alcotest.fail "expected Cap_exceeded"
        | exception Rewrite.Cap_exceeded { scope; rewrites; cap } ->
          check_int "cap echoed" 3 cap;
          check_bool "rewrite count past the cap" true (rewrites > cap);
          check_bool "scope names the rewritten region" true
            (scope = "builtin.module"));
    Alcotest.test_case "GEMM pipeline: worklist visits fewer ops, byte-identical result"
      `Quick (fun () ->
        (* Full sycl-mlir pipeline on the GEMM workload under both
           drivers: same final module byte-for-byte, strictly fewer
           canonicalize visits from the worklist (the gated bench
           counter). *)
        let w = Sycl_workloads.Polybench.gemm ~n:8 in
        let compile_with driver =
          let saved = Rewrite.get_default_driver () in
          Rewrite.set_default_driver driver;
          Fun.protect
            ~finally:(fun () -> Rewrite.set_default_driver saved)
            (fun () ->
              let m = w.Sycl_workloads.Common.w_module () in
              let cfg = Sycl_core.Driver.config Sycl_core.Driver.Sycl_mlir in
              let r = Sycl_core.Driver.compile cfg m in
              let stats = Pass.merged_stats r.Sycl_core.Driver.pipeline_result in
              ( Pass.Stats.get stats "canonicalize/canonicalize.ops_visited",
                Pass.Stats.get stats "canonicalize/rewrites",
                Printer.to_string r.Sycl_core.Driver.joint ))
        in
        let l_visits, l_rewrites, l_ir = compile_with Rewrite.Legacy in
        let w_visits, w_rewrites, w_ir = compile_with Rewrite.Worklist in
        check_int "same rewrites under both drivers" l_rewrites w_rewrites;
        check_bool
          (Printf.sprintf "worklist visits fewer ops (legacy %d, worklist %d)"
             l_visits w_visits)
          true (w_visits < l_visits);
        check_bool "byte-identical compiled module" true (l_ir = w_ir));
    Alcotest.test_case "driver flag round-trips and defaults to worklist" `Quick
      (fun () ->
        check_bool "default" true (Rewrite.get_default_driver () = Rewrite.Worklist);
        check_bool "worklist parses" true
          (Rewrite.driver_of_string "worklist" = Some Rewrite.Worklist);
        check_bool "legacy parses" true
          (Rewrite.driver_of_string "legacy" = Some Rewrite.Legacy);
        check_bool "unknown rejected" true (Rewrite.driver_of_string "bogus" = None));
    (* --- CSE structural key: interned, printer-consistent attributes. --- *)
    Alcotest.test_case "CSE keeps 0.0 and -0.0 constants distinct" `Quick (fun () ->
        (* Polymorphic compare says 0.0 = -0.0, so the seed key merged
           them — miscompiling e.g. 1.0 /. x. The interned key uses the
           printed form, which distinguishes the sign. *)
        let m, f =
          Helpers.with_func ~results:[ Types.f32 ] (fun b _ ->
              let pz = A.const_float b 0.0 in
              let nz = A.const_float b (-0.0) in
              Dialects.Func.return b [ A.addf b pz nz ])
        in
        ignore (run_pass Sycl_core.Cse.pass m);
        check_int "both zero constants kept" 2 (Helpers.count_ops f "arith.constant");
        (* Round-trip through the printer: the parsed module keys the
           same way. *)
        let m' = Parser.parse_module (Printer.to_string m) in
        ignore (run_pass Sycl_core.Cse.pass m');
        check_int "still distinct after round-trip" 2
          (Helpers.count_ops m' "arith.constant"));
    Alcotest.test_case "CSE keys nan constants consistently with the printer" `Quick
      (fun () ->
        (* Distinct nan payloads print identically ("nan"), so they key
           identically — exactly what a printer round-trip produces. *)
        let nan_a = Int64.float_of_bits 0x7FF8000000000000L in
        let nan_b = Int64.float_of_bits 0x7FF8000000000001L in
        let m, f =
          Helpers.with_func ~results:[ Types.f32 ] (fun b _ ->
              let x = A.const_float b nan_a in
              let y = A.const_float b nan_b in
              Dialects.Func.return b [ A.addf b x y ])
        in
        ignore (run_pass Sycl_core.Cse.pass m);
        check_int "identically printed nans merged" 1
          (Helpers.count_ops f "arith.constant");
        let m' = Parser.parse_module (Printer.to_string m) in
        ignore (run_pass Sycl_core.Cse.pass m');
        check_int "round-trip agrees" 1 (Helpers.count_ops m' "arith.constant"));
    Alcotest.test_case "CSE still distinguishes same value at different types" `Quick
      (fun () ->
        let m, f =
          Helpers.with_func ~results:[ Types.i64 ] (fun b _ ->
              let a = A.const_int b 7 in
              let c = A.const_int b ~ty:Types.i32 7 in
              ignore c;
              Dialects.Func.return b [ a ])
        in
        ignore (run_pass Sycl_core.Cse.pass m);
        (* i32 7 is unused but CSE does not DCE; both remain. *)
        check_int "types keep constants apart" 2
          (Helpers.count_ops f "arith.constant"));
  ]

let tests = ("rewrite", tests_list)
