(* Parallel multi-domain simulator backend: sequential-vs-parallel
   equivalence (stats, memory, profile), the cross-group race detector,
   identical error reporting under both backends, and the per-launch
   profile segments. *)

open Mlir
module A = Dialects.Arith
module K = Sycl_frontend.Kernel
module S = Sycl_core.Sycl_types
module Interp = Sycl_sim.Interp
module Memory = Sycl_sim.Memory
module Cost = Sycl_sim.Cost
module Profile = Sycl_sim.Profile

let acc_desc ?(range = [| 16 |]) alloc =
  Interp.Acc
    {
      Interp.a_alloc = alloc;
      a_range = range;
      a_mem_range = range;
      a_offset = Array.map (fun _ -> 0) range;
      a_is_float = true;
    }

let launch ?(wg = [ 16 ]) ?(global = [ 64 ]) ?domains ?check_races m k args =
  Interp.launch ?domains ?check_races ~module_op:m ~kernel:k ~args ~global
    ~wg_size:wg ()

let floats alloc =
  Array.map
    (function Memory.F f -> f | Memory.I i -> float_of_int i)
    alloc.Memory.data

let stats_str s = Format.asprintf "%a" Cost.pp_launch_stats s

(* A small matmul: c[i,j] = sum_k a[i,k] * b[k,j]. *)
let matmul_kernel m ~n =
  Sycl_frontend.Kernel.define m ~name:"matmul" ~dims:2
    ~args:
      [ K.Acc (2, S.Read, Types.f32); K.Acc (2, S.Read, Types.f32);
        K.Acc (2, S.Write, Types.f32) ]
    (fun b ~item ~args ->
      match args with
      | [ a; bm; c ] ->
        let i = K.gid b item 0 and j = K.gid b item 1 in
        let zero = A.const_index b 0 in
        let one = A.const_index b 1 in
        let nn = A.const_index b n in
        let loop =
          Dialects.Scf.for_ b ~lb:zero ~ub:nn ~step:one
            ~iter_args:[ K.fconst b 0.0 ]
            (fun bb kk acc ->
              let av = K.acc_get bb a [ i; kk ] in
              let bv = K.acc_get bb bm [ kk; j ] in
              [ K.addf bb (List.hd acc) (K.mulf bb av bv) ])
        in
        K.acc_set b c [ i; j ] (Core.result loop 0)
      | _ -> assert false)

(* The barrier stencil from the simulator tests: each item writes
   tile[lid], barriers, then reads the mirrored slot. *)
let stencil_kernel m =
  Sycl_frontend.Kernel.define m ~name:"rev" ~dims:1 ~nd:true
    ~args:[ K.Acc (1, S.Write, Types.f32) ]
    (fun b ~item ~args ->
      let out = List.hd args in
      let lid = K.lid b item 0 in
      let gid = K.gid b item 0 in
      let tile = Dialects.Gpu.alloc_local b [ 16 ] Types.f32 in
      let v = A.sitofp b (A.index_cast b lid Types.i64) Types.f32 in
      Dialects.Memref.store b v tile [ lid ];
      Dialects.Gpu.barrier b;
      let fifteen = A.const_index b 15 in
      let mirror = A.subi b fifteen lid in
      K.acc_set b out [ gid ] (Dialects.Memref.load b tile [ mirror ]))

let tests_list =
  [
    Alcotest.test_case "matmul: parallel stats and memory match sequential"
      `Quick (fun () ->
        let n = 8 in
        let run domains =
          let m = Helpers.fresh_module () in
          let k = matmul_kernel m ~n in
          let a = Memory.alloc ~label:"a" ~size:(n * n) () in
          let b = Memory.alloc ~label:"b" ~size:(n * n) () in
          let c = Memory.alloc ~label:"c" ~size:(n * n) () in
          Array.iteri
            (fun i _ -> a.Memory.data.(i) <- Memory.F (float_of_int (i mod 7)))
            a.Memory.data;
          Array.iteri
            (fun i _ -> b.Memory.data.(i) <- Memory.F (float_of_int (i mod 5)))
            b.Memory.data;
          let range = [| n; n |] in
          let stats =
            launch ~global:[ n; n ] ~wg:[ 4; 4 ] ~domains m k
              [| Interp.Item; acc_desc ~range a; acc_desc ~range b;
                 acc_desc ~range c |]
          in
          (stats_str stats, floats c)
        in
        let seq_stats, seq_c = run 1 in
        let par_stats, par_c = run 4 in
        Alcotest.(check string) "identical stats" seq_stats par_stats;
        Array.iteri
          (fun i x -> Alcotest.(check (float 0.0)) "identical memory" seq_c.(i) x)
          par_c);
    Alcotest.test_case "barrier stencil: parallel matches sequential" `Quick
      (fun () ->
        let run domains =
          let m = Helpers.fresh_module () in
          let k = stencil_kernel m in
          let c = Memory.alloc ~label:"c" ~size:64 () in
          let stats =
            launch ~global:[ 64 ] ~wg:[ 16 ] ~domains m k
              [| Interp.Item; acc_desc ~range:[| 64 |] c |]
          in
          (stats_str stats, floats c)
        in
        let seq_stats, seq_c = run 1 in
        let par_stats, par_c = run 4 in
        Alcotest.(check string) "identical stats (incl. barriers)" seq_stats
          par_stats;
        Array.iteri
          (fun i x -> Alcotest.(check (float 0.0)) "identical memory" seq_c.(i) x)
          par_c;
        (* Sanity: the stencil really computes the mirrored local id. *)
        Array.iteri
          (fun i x ->
            Alcotest.(check (float 1e-6)) "mirror"
              (float_of_int (15 - (i mod 16)))
              x)
          par_c);
    Alcotest.test_case "more domains than groups degrades gracefully" `Quick
      (fun () ->
        let m = Helpers.fresh_module () in
        let k = stencil_kernel m in
        let c = Memory.alloc ~label:"c" ~size:32 () in
        let stats =
          launch ~global:[ 32 ] ~wg:[ 16 ] ~domains:16 m k
            [| Interp.Item; acc_desc ~range:[| 32 |] c |]
        in
        Alcotest.(check int) "2 work-groups" 2 stats.Cost.work_groups;
        Alcotest.(check int) "32 work-items" 32 stats.Cost.work_items);
    Alcotest.test_case "racy kernel caught by the race detector" `Quick
      (fun () ->
        (* Every work-item of every group writes out[0]: the two groups'
           footprints overlap on cell 0. *)
        let m = Helpers.fresh_module () in
        let k =
          Sycl_frontend.Kernel.define m ~name:"racy" ~dims:1
            ~args:[ K.Acc (1, S.Write, Types.f32) ]
            (fun b ~item ~args ->
              let out = List.hd args in
              let _i = K.gid b item 0 in
              K.acc_set b out [ A.const_index b 0 ] (K.fconst b 1.0))
        in
        let c = Memory.alloc ~label:"out" ~size:32 () in
        match
          launch ~global:[ 32 ] ~wg:[ 16 ] ~check_races:true m k
            [| Interp.Item; acc_desc ~range:[| 32 |] c |]
        with
        | _ -> Alcotest.fail "expected Race_detected"
        | exception Interp.Race_detected races ->
          Alcotest.(check bool) "at least one race" true (races <> []);
          let r = List.hd races in
          Alcotest.(check int) "cell 0" 0 r.Interp.r_cell;
          Alcotest.(check int) "group 0 first" 0 r.Interp.r_group_a;
          Alcotest.(check int) "group 1 second" 1 r.Interp.r_group_b;
          Alcotest.(check string) "names the buffer" "out" r.Interp.r_label);
    Alcotest.test_case "race-free kernel passes the race detector" `Quick
      (fun () ->
        let m = Helpers.fresh_module () in
        let k =
          Sycl_frontend.Kernel.define m ~name:"ok" ~dims:1
            ~args:[ K.Acc (1, S.Write, Types.f32) ]
            (fun b ~item ~args ->
              let out = List.hd args in
              let i = K.gid b item 0 in
              K.acc_set b out [ i ] (K.fconst b 1.0))
        in
        let c = Memory.alloc ~label:"out" ~size:64 () in
        let stats =
          launch ~global:[ 64 ] ~wg:[ 16 ] ~check_races:true ~domains:4 m k
            [| Interp.Item; acc_desc ~range:[| 64 |] c |]
        in
        Alcotest.(check int) "4 work-groups" 4 stats.Cost.work_groups);
    Alcotest.test_case "divergent barrier fails identically under both backends"
      `Quick (fun () ->
        let diverges domains =
          let m = Helpers.fresh_module () in
          let k =
            Sycl_frontend.Kernel.define m ~name:"bad" ~dims:1 ~nd:true ~args:[]
              (fun b ~item ~args:_ ->
                let lid = K.lid b item 0 in
                let zero = A.const_index b 0 in
                let c = A.cmpi b A.Eq lid zero in
                ignore
                  (Dialects.Scf.if_ b c
                     ~then_:(fun bb ->
                       Dialects.Gpu.barrier bb;
                       [])
                     ()))
          in
          match launch ~global:[ 64 ] ~wg:[ 16 ] ~domains m k [| Interp.Item |] with
          | _ -> false
          | exception Interp.Barrier_divergence -> true
        in
        Alcotest.(check bool) "sequential raises Barrier_divergence" true
          (diverges 1);
        Alcotest.(check bool) "parallel raises Barrier_divergence" true
          (diverges 4));
    Alcotest.test_case "gemm run digest identical under 4 domains" `Quick
      (fun () ->
        match
          Sycl_workloads.Differential.check_parallel ~domains:4
            (Sycl_workloads.Polybench.gemm ~n:16)
        with
        | Ok () -> ()
        | Error f -> Alcotest.fail (Difftest.failure_to_string f));
    Alcotest.test_case "profile segments commit atomically and in order" `Quick
      (fun () ->
        let r = Profile.recorder () in
        let s1 = Profile.segment () and s2 = Profile.segment () in
        (* Interleaved recording into two segments — the old shared-clock
           recorder would interleave the timestamps. *)
        Profile.record_seg s1 ~cat:"launch" ~name:"a" ~dur:5 ();
        Profile.record_seg s2 ~cat:"launch" ~name:"b" ~dur:3 ();
        Profile.record_seg s1 ~cat:"kernel" ~name:"a" ~dur:2 ();
        Profile.commit r s1;
        Profile.commit r s2;
        match Profile.events r with
        | [ e1; e2; e3 ] ->
          Alcotest.(check string) "a first" "a" e1.Profile.ev_name;
          Alcotest.(check int) "a starts at 0" 0 e1.Profile.ev_ts;
          Alcotest.(check int) "a kernel follows" 5 e2.Profile.ev_ts;
          Alcotest.(check string) "b after a" "b" e3.Profile.ev_name;
          Alcotest.(check int) "b shifted past a's span" 7 e3.Profile.ev_ts;
          Alcotest.(check int) "clock advanced by both spans" 3
            e3.Profile.ev_dur
        | evs ->
          Alcotest.failf "expected 3 events, got %d" (List.length evs));
  ]

let tests = ("parallel-sim", tests_list)
