(* Uniformity analysis tests (Section V-C), including the paper's
   Listing 2 scenario: the global-id getter is a source of non-uniformity;
   a value loaded from memory written under a divergent branch is
   non-uniform; group-level queries stay uniform. *)

open Mlir
module A = Dialects.Arith
module U = Sycl_core.Uniformity
module K = Sycl_frontend.Kernel
module S = Sycl_core.Sycl_types

let lat = Alcotest.testable (Fmt.of_to_string U.lattice_to_string) ( = )

(* A kernel calling f1 with its (non-uniform) global id, and a chain
   f1 -> f2 -> ... -> f[depth] each forwarding its parameter. Functions
   are defined callee-first, so each inter-procedural sweep advances the
   non-uniform fact exactly one call level. *)
let call_chain_module depth =
  let m = Helpers.fresh_module () in
  for i = depth downto 1 do
    ignore
      (Dialects.Func.func m
         (Printf.sprintf "f%d" i)
         ~args:[ Types.Index ] ~results:[ Types.Index ]
         (fun b vals ->
           let x = List.hd vals in
           let r =
             if i = depth then x
             else
               Dialects.Func.call1 b
                 (Printf.sprintf "f%d" (i + 1))
                 ~operands:[ x ] ~result:Types.Index
           in
           Dialects.Func.return b [ r ]))
  done;
  ignore
    (Sycl_frontend.Kernel.define m ~name:"k" ~dims:1 ~args:[]
       (fun b ~item ~args:_ ->
         let g = K.gid b item 0 in
         ignore (Dialects.Func.call1 b "f1" ~operands:[ g ] ~result:Types.Index)));
  m

(* The deepest function's returned value (its forwarded parameter). *)
let chain_tip_value m depth =
  let f = Option.get (Core.lookup_func m (Printf.sprintf "f%d" depth)) in
  let ret = List.hd (Core.collect_named f "func.return") in
  Core.operand ret 0

let tests_list =
  [
    Alcotest.test_case "global id is non-uniform; group id and ranges uniform" `Quick
      (fun () ->
        let m, _f =
          Helpers.with_kernel ~dims:1 ~nd:true ~args:[] (fun b ~item ~args:_ ->
              let dim = A.const_int b ~ty:Types.i32 0 in
              let gid = Sycl_core.Sycl_ops.nd_item_get_global_id b item dim in
              let grp = Sycl_core.Sycl_ops.nd_item_get_group_id b item dim in
              let rng = Sycl_core.Sycl_ops.nd_item_get_global_range b item dim in
              ignore (gid, grp, rng))
        in
        let t = U.analyze m in
        let f = Option.get (Core.lookup_func m "k") in
        let gid = Core.result (List.hd (Core.collect_named f "sycl.nd_item.get_global_id")) 0 in
        let grp = Core.result (List.hd (Core.collect_named f "sycl.nd_item.get_group_id")) 0 in
        let rng = Core.result (List.hd (Core.collect_named f "sycl.nd_item.get_global_range")) 0 in
        Alcotest.check lat "gid" U.Non_uniform (U.value t gid);
        Alcotest.check lat "group id" U.Uniform (U.value t grp);
        Alcotest.check lat "range" U.Uniform (U.value t rng));
    Alcotest.test_case "non-uniformity propagates through arithmetic" `Quick
      (fun () ->
        let m, _f =
          Helpers.with_kernel ~dims:1 ~args:[] (fun b ~item ~args:_ ->
              let i = K.gid b item 0 in
              let one = A.const_index b 1 in
              let j = A.addi b i one in
              ignore (A.cmpi b A.Sgt j one))
        in
        let t = U.analyze m in
        let f = Option.get (Core.lookup_func m "k") in
        let cmp = Core.result (List.hd (Core.collect_named f "arith.cmpi")) 0 in
        Alcotest.check lat "branch condition" U.Non_uniform (U.value t cmp));
    Alcotest.test_case "constants and kernel parameters are uniform" `Quick (fun () ->
        let m, _f =
          Helpers.with_kernel ~dims:1 ~args:[ K.Scal Types.f32 ] (fun b ~item:_ ~args ->
              let a = List.hd args in
              ignore (K.mulf b a (K.fconst b 2.0)))
        in
        let t = U.analyze m in
        let f = Option.get (Core.lookup_func m "k") in
        let mul = Core.result (List.hd (Core.collect_named f "arith.mulf")) 0 in
        Alcotest.check lat "product" U.Uniform (U.value t mul));
    Alcotest.test_case "paper Listing 2: divergent store makes a load non-uniform"
      `Quick (fun () ->
        (* %alloca written differently under a divergent branch; the load
           afterwards is non-uniform even though its address is uniform. *)
        let m, _f =
          Helpers.with_kernel ~dims:2 ~nd:true ~args:[ K.Scal Types.Index ]
            (fun b ~item ~args ->
              let idx = List.hd args in
              let alloca =
                Builder.op1 b "memref.alloca" ~operands:[]
                  ~result_type:(Types.memref ~space:Types.Private [ Some 10 ] Types.i64)
              in
              let dim = A.const_int b ~ty:Types.i32 0 in
              let gid = Sycl_core.Sycl_ops.nd_item_get_global_id b item dim in
              let zero = A.const_index b 0 in
              let cond = A.cmpi b A.Sgt gid zero in
              let c1 = A.const_int b 1 in
              let c2 = A.const_int b 2 in
              ignore
                (Dialects.Scf.if_ b cond
                   ~then_:(fun bb ->
                     Dialects.Memref.store bb c1 alloca [ idx ];
                     [])
                   ~else_:(fun bb ->
                     Dialects.Memref.store bb c2 alloca [ idx ];
                     [])
                   ());
              let load = Dialects.Memref.load b alloca [ idx ] in
              ignore (A.cmpi b A.Sgt load (A.const_int b 0)))
        in
        let t = U.analyze m in
        let f = Option.get (Core.lookup_func m "k") in
        let load = Core.result (List.hd (Core.collect_named f "memref.load")) 0 in
        Alcotest.check lat "loaded value" U.Non_uniform (U.value t load);
        (* And the second condition (%cond1 in the paper) as well. *)
        let conds = Core.collect_named f "arith.cmpi" in
        let cond1 = Core.result (List.nth conds (List.length conds - 1)) 0 in
        Alcotest.check lat "cond1" U.Non_uniform (U.value t cond1));
    Alcotest.test_case "uniform store keeps loads uniform" `Quick (fun () ->
        let m, _f =
          Helpers.with_kernel ~dims:1 ~args:[ K.Scal Types.Index ] (fun b ~item:_ ~args ->
              let idx = List.hd args in
              let alloca =
                Builder.op1 b "memref.alloca" ~operands:[]
                  ~result_type:(Types.memref ~space:Types.Private [ Some 10 ] Types.i64)
              in
              Dialects.Memref.store b (A.const_int b 7) alloca [ idx ];
              ignore (Dialects.Memref.load b alloca [ idx ]))
        in
        let t = U.analyze m in
        let f = Option.get (Core.lookup_func m "k") in
        let load = Core.result (List.hd (Core.collect_named f "memref.load")) 0 in
        Alcotest.check lat "loaded value" U.Uniform (U.value t load));
    Alcotest.test_case "loop iter args inherit non-uniform yields" `Quick (fun () ->
        let m, _f =
          Helpers.with_kernel ~dims:1 ~args:[] (fun b ~item ~args:_ ->
              let i = K.gid b item 0 in
              let zero = A.const_index b 0 in
              let four = A.const_index b 4 in
              let one = A.const_index b 1 in
              ignore
                (Dialects.Scf.for_ b ~lb:zero ~ub:four ~step:one ~iter_args:[ zero ]
                   (fun bb _ args -> [ A.addi bb (List.hd args) i ])))
        in
        let t = U.analyze m in
        let f = Option.get (Core.lookup_func m "k") in
        let loop = List.hd (Core.collect_named f "scf.for") in
        Alcotest.check lat "loop result" U.Non_uniform (U.value t (Core.result loop 0)));
    Alcotest.test_case "in_divergent_region distinguishes guards" `Quick (fun () ->
        let m, _f =
          Helpers.with_kernel ~dims:1 ~args:[] (fun b ~item ~args:_ ->
              let i = K.gid b item 0 in
              let zero = A.const_index b 0 in
              let div_cond = A.cmpi b A.Sgt i zero in
              ignore
                (Dialects.Scf.if_ b div_cond
                   ~then_:(fun bb ->
                     ignore (A.const_int bb 1);
                     [])
                   ());
              let uni_cond = A.cmpi b A.Sgt zero zero in
              ignore
                (Dialects.Scf.if_ b uni_cond
                   ~then_:(fun bb ->
                     ignore (A.const_int bb 2);
                     [])
                   ()))
        in
        let t = U.analyze m in
        let f = Option.get (Core.lookup_func m "k") in
        let consts =
          List.filter
            (fun (o : Core.op) ->
              Core.attr o "value" = Some (Attr.Int 1)
              || Core.attr o "value" = Some (Attr.Int 2))
            (Core.collect_named f "arith.constant")
        in
        match consts with
        | [ in_div; in_uni ] ->
          Alcotest.(check bool) "divergent guard" true (U.in_divergent_region t in_div);
          Alcotest.(check bool) "uniform guard" false (U.in_divergent_region t in_uni)
        | _ -> Alcotest.fail "expected the two nested constants");
    Alcotest.test_case "interprocedural: callee params join call-site args" `Quick
      (fun () ->
        let m = Helpers.fresh_module () in
        let callee =
          Dialects.Func.func m "helper" ~args:[ Types.Index ] ~results:[ Types.Index ]
            (fun b vals -> Dialects.Func.return b [ List.hd vals ])
        in
        ignore callee;
        ignore
          (Sycl_frontend.Kernel.define m ~name:"k" ~dims:1 ~args:[]
             (fun b ~item ~args:_ ->
               let i = K.gid b item 0 in
               ignore
                 (Dialects.Func.call b "helper" ~operands:[ i ] ~results:[ Types.Index ])));
        let t = U.analyze m in
        let k = Option.get (Core.lookup_func m "k") in
        let call = List.hd (Core.collect_named k "func.call") in
        Alcotest.check lat "call result carries non-uniformity through the callee"
          U.Non_uniform
          (U.value t (Core.result call 0)));
    Alcotest.test_case "external call results are unknown" `Quick (fun () ->
        let m = Helpers.fresh_module () in
        ignore (Dialects.Func.declare m "ext" ~args:[] ~results:[ Types.Index ]);
        ignore
          (Sycl_frontend.Kernel.define m ~name:"k" ~dims:1 ~args:[]
             (fun b ~item:_ ~args:_ ->
               ignore (Dialects.Func.call b "ext" ~operands:[] ~results:[ Types.Index ])));
        let t = U.analyze m in
        let k = Option.get (Core.lookup_func m "k") in
        let call = List.hd (Core.collect_named k "func.call") in
        Alcotest.check lat "unknown" U.Unknown (U.value t (Core.result call 0)));
    Alcotest.test_case "deep call chains within the sweep budget converge" `Quick
      (fun () ->
        let m = call_chain_module 5 in
        let t = U.analyze m in
        Alcotest.(check bool) "converged" true (U.converged t);
        Alcotest.check lat "deepest callee sees the non-uniform arg" U.Non_uniform
          (U.value t (chain_tip_value m 5)));
    Alcotest.test_case "call chains past the sweep cap degrade soundly, not silently"
      `Quick (fun () ->
        (* 36 callee-first functions: each fixpoint sweep advances the
           kernel's non-uniform argument exactly one call level, so the
           32-sweep budget runs out before the tip. The seed left the
           deep parameters at their stale Uniform initialization — a
           miscompile if a client uses the result to, e.g., hoist a
           barrier. Now the analysis reports non-convergence and refuses
           to claim Uniform for anything. *)
        let depth = 36 in
        let m = call_chain_module depth in
        let t = U.analyze m in
        Alcotest.(check bool) "not converged" false (U.converged t);
        Alcotest.check lat "deep value degrades to Unknown, never stale Uniform"
          U.Unknown
          (U.value t (chain_tip_value m depth)));
  ]

let tests = ("uniformity", tests_list)
