(* Regenerates the checked-in example IR from the workload builders:

     dune exec examples/gen_ir.exe -- matmul > examples/matmul.mlir
     dune exec examples/gen_ir.exe -- matmul --debuginfo > examples/matmul.loc.mlir

   The files under examples/ are committed so the CLI tools (and CI's
   smoke test) have stable textual inputs without running OCaml first.
   [--debuginfo] prints a trailing loc(...) on every op — the golden
   input for the location round-trip checks. *)

open Sycl_workloads
module K = Sycl_frontend.Kernel
module Host = Sycl_frontend.Host
module S = Sycl_core.Sycl_types

(* GEMM with a per-row scale vector:
     C[i][j] = beta*C[i][j] + sum_k scale[i] * A[i][k] * B[k][j]
   The scale[i] load inside the k-loop is loop-invariant; hoisting it
   needs the SYCL-aware alias analysis (scale and C are distinct
   buffers), so the example exercises LICM's memory hoisting on top of
   the reduction rewrite and loop internalization plain GEMM shows. *)
let matmul_module () =
  let f32 = Mlir.Types.f32 in
  let m = Common.fresh_module () in
  ignore
    (K.define m ~name:"matmul" ~dims:2
       ~args:
         [ K.Acc (2, S.Read, f32); K.Acc (2, S.Read, f32);
           K.Acc (2, S.Read_write, f32); K.Acc (1, S.Read, f32); K.Scal f32 ]
       (fun b ~item ~args ->
         (* Name locations mimicking what a Clang-based frontend attaches:
            each statement of the kernel functor becomes a named location
            anchored at its position in the (hypothetical) matmul.cpp.
            The builder stamps the current default onto every op it
            inserts, so whole statements share one location — visible
            under --mlir-print-debuginfo and in located remarks. *)
         let at stmt line =
           Mlir.Loc.name stmt
             ~child:(Mlir.Loc.file ~file:"matmul.cpp" ~line ~col:5)
         in
         match args with
         | [ a; bb; c; scale; beta_v ] ->
           Mlir.Builder.set_default_loc b (at "indices" 12);
           let i = K.gid b item 0 and j = K.gid b item 1 in
           let n = K.grange b item 0 in
           Mlir.Builder.set_default_loc b (at "scale-C" 13);
           K.acc_update b c [ i; j ] (fun v -> K.mulf b v beta_v);
           Mlir.Builder.set_default_loc b (at "k-loop" 14);
           K.for_up b n (fun b2 k ->
               Mlir.Builder.set_default_loc b2 (at "dot-product" 15);
               let s = K.acc_get b2 scale [ i ] in
               let av = K.acc_get b2 a [ i; k ] in
               let bv = K.acc_get b2 bb [ k; j ] in
               let prod = K.mulf b2 s (K.mulf b2 av bv) in
               Mlir.Builder.set_default_loc b2 (at "accumulate" 16);
               K.acc_update b2 c [ i; j ] (fun v -> K.addf b2 v prod))
         | _ -> assert false));
  Polybench.emit_host m
    ~args:[ Polybench.mem; Polybench.mem; Polybench.mem; Polybench.mem;
            Mlir.Types.Index ]
    ~buffers:
      [ Polybench.sq_buf ~size_arg:4 0; Polybench.sq_buf ~size_arg:4 1;
        Polybench.sq_buf ~size_arg:4 2; Polybench.vec_buf ~size_arg:4 3 ]
    ~body:
      [ Polybench.submit2 ~kernel:"matmul" ~size_arg:4
          [ Polybench.cap_r 0; Polybench.cap_r 1; Polybench.cap_rw 2;
            Polybench.cap_r 3; Host.Capture_scalar (Mlir.Attr.Float 1.2) ] ];
  m

let () =
  Dialects.Register.init ();
  Sycl_core.Sycl_ops.init ();
  Sycl_core.Sycl_host_ops.init ();
  Sycl_core.Licm.init ();
  let argv = List.tl (Array.to_list Sys.argv) in
  let debuginfo = List.mem "--debuginfo" argv in
  let which =
    match List.filter (fun a -> a <> "--debuginfo") argv with
    | [] -> "matmul"
    | w :: _ -> w
  in
  let m =
    match which with
    | "matmul" -> matmul_module ()
    | "gemm" -> (Polybench.gemm ~n:16).Common.w_module ()
    | "vec-add" -> (Single_kernel.vec_add ~n:256).Common.w_module ()
    | other ->
      prerr_endline ("unknown example " ^ other ^ " (matmul|gemm|vec-add)");
      exit 2
  in
  print_string (Mlir.Printer.to_string ~debuginfo m)
